#pragma once

#include "core/domain.h"
#include "core/scaling_factors.h"
#include "stats/series.h"

/// \file tradeoff.h
/// Scale-out versus scale-up under IPSO. The paper (Section II) blames "the
/// lack of a sound scaling model" for the unsettled scale-up-vs-scale-out
/// debate [Nutch/Lucene, Michael et al.]; IPSO settles it per workload:
/// at equal resource multiple k, scale-UP yields speedup ~k (one k×-faster
/// unit sees no scale-out-induced or in-proportion penalty), while
/// scale-OUT yields S(k) from the IPSO model. This module computes both
/// and finds the crossover.

namespace ipso {

/// Speedup of scaling UP by factor k: one unit k times faster runs every
/// workload component k times faster, so S = k for any workload.
[[nodiscard]] double scale_up_speedup(double k) noexcept;

/// Comparison of the two strategies at equal resource multiple k.
struct ScaleChoice {
  double k = 1.0;
  double scale_out = 1.0;  ///< IPSO S(k)
  double scale_up = 1.0;   ///< k
  /// Positive when scaling out wins (it rarely does beyond small k for
  /// bounded types; it never does for IVs past the peak).
  double advantage_out = 0.0;
};

/// Evaluates both strategies over resource multiples `ks`.
[[nodiscard]] std::vector<ScaleChoice> compare_scaling(
    const ScalingFactors& f, Eta eta, std::span<const double> ks);

/// The largest resource multiple at which scaling out still achieves at
/// least `frac` of the scale-up speedup, searched over [1, k_max]. For a
/// Gustafson-like (It, alpha = 1) workload this is k_max (they tie);
/// for bounded or peaked types it is finite — the "stop buying nodes"
/// point of the paper's speedup-versus-cost discussion.
[[nodiscard]] double scale_out_competitive_limit(const ScalingFactors& f,
                                                 Eta eta, double frac = 0.5,
                                                 double k_max = 4096.0);

}  // namespace ipso
