#pragma once

#include <string_view>

/// \file workload.h
/// Workload-type vocabulary shared by the whole library (paper Section IV,
/// Eq. 13): how the parallelizable portion of the workload scales as the
/// system scales out.

namespace ipso {

/// External-scaling regime of the parallelizable workload (Eq. 13).
enum class WorkloadType {
  kFixedSize,      ///< EX(n) = 1   — Amdahl's regime (resource-abundant)
  kFixedTime,      ///< EX(n) = n   — Gustafson's regime (resource-constrained)
  kMemoryBounded,  ///< EX(n) = g(n) — Sun-Ni's regime; g(n) ≈ n for
                   ///<                data-intensive workloads (paper Fig. 6)
};

/// Human-readable name for reports.
std::string_view to_string(WorkloadType t) noexcept;

/// Decomposition of one job execution at scale-out degree n into the three
/// IPSO workload components, all in units of sequential processing time
/// (paper Eqs. 1-6).
struct WorkloadComponents {
  double n = 1.0;    ///< scale-out degree
  double wp = 0.0;   ///< Wp(n): total parallelizable workload
  double ws = 0.0;   ///< Ws(n): serial (merge) workload
  double wo = 0.0;   ///< Wo(n): scale-out-induced workload (0 at n = 1)
  double max_tp = 0.0;  ///< E[max_i Tp,i(n)]: slowest parallel task

  /// Total sequential execution time of the job (Eq. 7 numerator). The
  /// sequential execution model never incurs Wo.
  double sequential_time() const noexcept { return wp + ws; }

  /// Parallel job response time (Eq. 7 denominator).
  double parallel_time() const noexcept { return max_tp + ws + wo; }

  /// Speedup by Eq. 7.
  double speedup() const noexcept {
    const double d = parallel_time();
    return d > 0.0 ? sequential_time() / d : 0.0;
  }
};

}  // namespace ipso
