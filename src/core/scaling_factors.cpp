#include "core/scaling_factors.h"

#include "core/contracts.h"

#include <cmath>
#include <stdexcept>

namespace ipso {

ScalingFn make_external(WorkloadType type, ScalingFn g) {
  switch (type) {
    case WorkloadType::kFixedSize:
      return constant_factor(1.0);
    case WorkloadType::kFixedTime:
      return identity_factor();
    case WorkloadType::kMemoryBounded:
      if (g) return g;
      // For data-intensive working sets g(n) ≈ n (paper Fig. 6).
      return identity_factor();
  }
  throw std::invalid_argument("make_external: unknown workload type");
}

ScalingFn constant_factor(double value) {
  return [value](double) { return value; };
}

ScalingFn identity_factor() {
  return [](double n) { return n; };
}

ScalingFn linear_factor(double slope, double intercept) {
  return [slope, intercept](double n) { return slope * n + intercept; };
}

ScalingFn power_factor(double coeff, double exponent) {
  return [coeff, exponent](double n) { return coeff * std::pow(n, exponent); };
}

ScalingFn make_q(Beta beta, Gamma gamma) {
  // β ≥ 0 and γ ≥ 0 are guaranteed by the domain types at the boundary.
  // γ = 0 encodes "no scale-out-induced workload" (paper, below Eq. 15).
  if (gamma == 0.0 || beta == 0.0) return constant_factor(0.0);
  return [b = beta.get(), g = gamma.get()](double n) {
    if (n <= 1.0) return 0.0;  // q(1) = 0 by definition (Eq. 6)
    return b * std::pow(n, g);
  };
}

ScalingFn stepwise_linear_factor(double slope_lo, double intercept_lo,
                                 double knot, double slope_hi,
                                 double intercept_hi) {
  return [=](double n) {
    return n <= knot ? slope_lo * n + intercept_lo
                     : slope_hi * n + intercept_hi;
  };
}

ScalingFactors AsymptoticParams::materialize() const {
  IPSO_EXPECTS(alpha > 0.0, "materialize: alpha must be positive");
  ScalingFactors f;
  f.q = make_q(beta, gamma);
  if (type == WorkloadType::kFixedSize) {
    f.ex = constant_factor(1.0);
    f.in = constant_factor(1.0 / alpha);
  } else {
    f.ex = identity_factor();
    // IN(n) = EX(n)/ε(n) = n / (α n^δ) = n^(1-δ)/α.
    f.in = power_factor(1.0 / alpha, 1.0 - delta);
  }
  return f;
}

}  // namespace ipso
