#include "core/laws.h"

#include <limits>

namespace ipso::laws {

double amdahl(Eta eta, NodeCount n) noexcept {
  return 1.0 / (eta / n + (1.0 - eta));
}

double gustafson(Eta eta, NodeCount n) noexcept {
  return eta * n + (1.0 - eta);
}

double sun_ni(Eta eta, NodeCount n, const ScalingFn& g) {
  const double gn = g(n);
  return (eta * gn + (1.0 - eta)) / (eta * gn / n + (1.0 - eta));
}

double sun_ni(Eta eta, NodeCount n) noexcept {
  return (eta * n + (1.0 - eta)) / (eta + (1.0 - eta));
}

double amdahl_bound(Eta eta) noexcept {
  if (eta >= 1.0) return std::numeric_limits<double>::infinity();
  return 1.0 / (1.0 - eta);
}

}  // namespace ipso::laws
