#pragma once

#include "core/domain.h"
#include "core/scaling_factors.h"
#include "core/workload.h"
#include "stats/series.h"

#include <span>
#include <string>
#include <vector>

/// \file model.h
/// The IPSO speedup model itself: the statistical form (Eq. 8), the
/// deterministic form (Eq. 10), and the asymptotic form (Eqs. 16-17).

namespace ipso {

/// Measured quantities needed by the statistical IPSO formula (Eq. 8).
/// All times are in the same (arbitrary) unit.
struct StatisticalInputs {
  double e_max_tp = 0.0;  ///< E[max_i Tp,i(n)]: mean slowest-task time at n
  double e_tp1 = 0.0;     ///< E[Tp,1(1)]: mean parallel workload time at n = 1
  double e_ts1 = 0.0;     ///< E[Ts(1)]: mean serial workload time at n = 1
};

/// Statistical IPSO speedup (Eq. 8) at scale-out degree n given the scaling
/// factors and the measured task-time statistics. Degenerates to Eq. 10 when
/// e_max_tp equals tp(1)·EX(n)/n.
[[nodiscard]] double speedup_statistical(const ScalingFactors& f,
                                         const StatisticalInputs& m,
                                         NodeCount n);

/// Deterministic IPSO speedup (Eq. 10): every parallel task takes the same
/// time, so E[max Tp,i(n)] = tp(n) = Wp(n)/n. The domain types validate
/// η ∈ [0,1] and n ≥ 1 at the call boundary (contracts.h).
[[nodiscard]] double speedup_deterministic(const ScalingFactors& f, Eta eta,
                                           NodeCount n);

/// Asymptotic IPSO speedup (Eq. 16; Eq. 17 when eta = 1):
/// S(n) ≈ (η·α·n^δ + 1-η) / (η·α·n^(δ-1)·(1+β·n^γ) + 1-η).
[[nodiscard]] double speedup_asymptotic(const AsymptoticParams& p,
                                        NodeCount n);

/// Speedup directly from measured workload components (Eq. 7).
[[nodiscard]] double speedup_from_components(
    const WorkloadComponents& c) noexcept;

/// Parallelizable fraction η from the n = 1 workload split (Eq. 9/11).
/// Negative time components are a caller bug and trip the η-domain contract.
[[nodiscard]] Eta eta_from_times(double tp1, double ts1);

/// A model-evaluated speedup curve: the swept n values and the predicted
/// speedups, kept together so call sites stop zipping parallel vectors.
/// Returned by both speedup_curve overloads.
struct SpeedupCurve {
  std::vector<double> ns;        ///< scale-out degrees, as passed in
  std::vector<double> speedups;  ///< S(n) in the same order

  std::size_t size() const noexcept { return ns.size(); }
  bool empty() const noexcept { return ns.empty(); }

  /// (n, S(n)) as a named Series, ready for the fitters and printers.
  stats::Series as_series(std::string name = "S(n)") const;
};

/// Convenience: evaluates the deterministic model over a range of n values.
[[nodiscard]] SpeedupCurve speedup_curve(const ScalingFactors& f, Eta eta,
                                         std::span<const double> ns);

/// Convenience: evaluates the asymptotic model over a range of n values.
[[nodiscard]] SpeedupCurve speedup_curve(const AsymptoticParams& p,
                                         std::span<const double> ns);

}  // namespace ipso
