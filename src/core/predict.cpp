#include "core/predict.h"

#include "core/contracts.h"

#include <cmath>
#include <stdexcept>

namespace ipso {

SpeedupPredictor::SpeedupPredictor(ScalingFactors factors, Eta eta)
    : factors_(std::move(factors)), eta_(eta) {
  // η ∈ [0,1] is guaranteed by the Eta domain type at the boundary.
  IPSO_EXPECTS(factors_.ex && factors_.in && factors_.q,
               "SpeedupPredictor: incomplete factors");
}

SpeedupPredictor SpeedupPredictor::from_fits(const FactorFits& fits) {
  ScalingFactors f;
  f.ex = make_external(fits.params.type);
  f.q = make_q(fits.params.beta, fits.params.gamma);

  if (fits.params.eta >= 1.0) {
    f.in = constant_factor(1.0);  // no serial portion; IN is irrelevant
  } else if (fits.in_has_changepoint && fits.in_segmented) {
    const auto& seg = *fits.in_segmented;
    f.in = stepwise_linear_factor(seg.left.slope, seg.left.intercept, seg.knot,
                                  seg.right.slope, seg.right.intercept);
  } else if (fits.in_linear) {
    f.in = linear_factor(fits.in_linear->slope, fits.in_linear->intercept);
  } else {
    // Fall back to the asymptotic power law IN(n) = n^(1-δ)/α.
    f.in = power_factor(1.0 / fits.params.alpha, 1.0 - fits.params.delta);
  }
  return SpeedupPredictor(std::move(f), fits.params.eta);
}

double SpeedupPredictor::operator()(NodeCount n) const {
  return speedup_deterministic(factors_, eta_, n);
}

stats::Series SpeedupPredictor::curve(std::span<const double> ns,
                                      std::string name) const {
  stats::Series out(std::move(name));
  for (double n : ns) out.add(n, (*this)(n));
  return out;
}

ProvisioningPlan plan_provisioning(const SpeedupPredictor& predictor,
                                   std::span<const double> ns,
                                   double knee_frac) {
  IPSO_EXPECTS(!ns.empty(), "plan_provisioning: empty sweep");
  IPSO_EXPECTS(knee_frac > 0.0 && knee_frac <= 1.0,
               "plan_provisioning: knee_frac in (0,1]");
  ProvisioningPlan plan;
  plan.options.reserve(ns.size());
  double best_speedup = -1.0, best_value = -1.0;
  for (double n : ns) {
    ProvisioningOption opt;
    opt.n = n;
    opt.speedup = predictor(n);
    // Parallel run holds n nodes for T_seq/S(n); normalize T_seq = 1.
    opt.cost = opt.speedup > 0.0 ? n / opt.speedup : 1e300;
    opt.efficiency = opt.speedup / n;
    opt.value = opt.cost > 0.0 ? opt.speedup / opt.cost : 0.0;
    if (opt.speedup > best_speedup) {
      best_speedup = opt.speedup;
      plan.best_speedup_n = n;
    }
    if (opt.value > best_value) {
      best_value = opt.value;
      plan.best_value_n = n;
    }
    plan.options.push_back(opt);
  }
  plan.knee_n = plan.best_speedup_n;
  for (const auto& opt : plan.options) {
    if (opt.speedup >= knee_frac * best_speedup) {
      plan.knee_n = opt.n;
      break;  // options are in sweep order; the first hit is the cheapest
    }
  }
  return plan;
}

}  // namespace ipso
