#pragma once

#include "core/domain.h"
#include "core/scaling_factors.h"

#include <string>

/// \file sensitivity.h
/// Sensitivity analysis on the asymptotic IPSO model: which scaling factor
/// is the most valuable engineering target at a given scale? The paper's
/// diagnosis names the root cause; this module quantifies the payoff of
/// fixing it (e.g. "halving beta doubles the peak speedup of an IVs
/// workload, improving eta does nearly nothing").

namespace ipso {

/// Partial derivatives of S(n) with respect to each asymptotic parameter,
/// estimated by central differences.
struct Sensitivities {
  double n = 1.0;
  double d_eta = 0.0;
  double d_alpha = 0.0;
  double d_delta = 0.0;
  double d_beta = 0.0;
  double d_gamma = 0.0;
};

/// Numerical sensitivities at scale-out degree n. `rel_step` is the
/// relative perturbation (absolute for parameters at 0).
[[nodiscard]] Sensitivities sensitivities(const AsymptoticParams& p,
                                          NodeCount n,
                                          double rel_step = 1e-4);

/// Relative speedup gain from improving one parameter by `improvement`
/// (e.g. 0.1 = 10%) in its *beneficial* direction: eta/alpha/delta up
/// (clamped to their domains), beta/gamma down. Returns S_new/S_old - 1.
struct ImprovementGains {
  double n = 1.0;
  double eta = 0.0;
  double alpha = 0.0;
  double delta = 0.0;
  double beta = 0.0;
  double gamma = 0.0;
};
[[nodiscard]] ImprovementGains improvement_gains(const AsymptoticParams& p,
                                                 NodeCount n,
                                                 double improvement = 0.1);

/// One-line engineering advice: the parameter whose 10% improvement buys
/// the largest speedup gain at n, with the numbers.
[[nodiscard]] std::string improvement_advice(const AsymptoticParams& p,
                                             NodeCount n);

}  // namespace ipso
