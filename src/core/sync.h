#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

/// \file sync.h
/// Compile-time lock discipline for every concurrent subsystem.
///
/// This header is the ONLY place in the repository allowed to name the raw
/// std synchronization types (the `naked-std-mutex` lint rule walls them in
/// here). Everything else uses the `ipso::sync` wrappers, which carry Clang
/// Thread Safety Analysis attributes: under clang with `-Wthread-safety
/// -Wthread-safety-beta` the compiler *proves* that every `IPSO_GUARDED_BY`
/// field is touched only with its capability held, that every
/// `IPSO_REQUIRES` helper is called locked, and that `IPSO_ACQUIRED_AFTER`
/// edges (the DESIGN.md §13 lock-order table) are never inverted. Under any
/// other compiler the attribute macros expand to nothing and the wrappers
/// compile to the plain std types — the gcc Release build is unchanged.
///
/// The macro set mirrors the LLVM documentation names with an IPSO_ prefix
/// (matching IPSO_EXPECTS / IPSO_ENSURES from core/contracts.h):
///
///   IPSO_CAPABILITY / IPSO_SCOPED_CAPABILITY        type declarations
///   IPSO_GUARDED_BY / IPSO_PT_GUARDED_BY            data members
///   IPSO_REQUIRES / IPSO_REQUIRES_SHARED            "call me locked"
///   IPSO_ACQUIRE / IPSO_RELEASE (+ _SHARED)         lock/unlock functions
///   IPSO_TRY_ACQUIRE (+ _SHARED)                    conditional acquisition
///   IPSO_EXCLUDES                                   "call me UNlocked"
///   IPSO_ACQUIRED_BEFORE / IPSO_ACQUIRED_AFTER      static lock order
///   IPSO_ASSERT_CAPABILITY (+ _SHARED)              runtime-checked holds
///   IPSO_RETURN_CAPABILITY                          capability getters
///   IPSO_NO_THREAD_SAFETY_ANALYSIS                  opt-out (justify it!)
///
/// Optional contention telemetry: configure with -DIPSO_SYNC_STATS=ON and
/// every *named* Mutex counts acquisitions, contended acquisitions, and
/// total hold time through cheap relaxed atomics (sync::profile() snapshots
/// them; bench_serve_load prints the table). The default build compiles all
/// of it out — an unnamed or default-built Mutex is exactly a std::mutex.

#if defined(__clang__) && (!defined(SWIG))
#define IPSO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IPSO_THREAD_ANNOTATION(x)  // no-op: attributes unsupported
#endif

#define IPSO_CAPABILITY(x) IPSO_THREAD_ANNOTATION(capability(x))
#define IPSO_SCOPED_CAPABILITY IPSO_THREAD_ANNOTATION(scoped_lockable)
#define IPSO_GUARDED_BY(x) IPSO_THREAD_ANNOTATION(guarded_by(x))
#define IPSO_PT_GUARDED_BY(x) IPSO_THREAD_ANNOTATION(pt_guarded_by(x))
#define IPSO_ACQUIRED_BEFORE(...) \
  IPSO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define IPSO_ACQUIRED_AFTER(...) \
  IPSO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define IPSO_REQUIRES(...) \
  IPSO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IPSO_REQUIRES_SHARED(...) \
  IPSO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define IPSO_ACQUIRE(...) \
  IPSO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IPSO_ACQUIRE_SHARED(...) \
  IPSO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define IPSO_RELEASE(...) \
  IPSO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IPSO_RELEASE_SHARED(...) \
  IPSO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define IPSO_TRY_ACQUIRE(...) \
  IPSO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define IPSO_TRY_ACQUIRE_SHARED(...) \
  IPSO_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define IPSO_EXCLUDES(...) IPSO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define IPSO_ASSERT_CAPABILITY(x) \
  IPSO_THREAD_ANNOTATION(assert_capability(x))
#define IPSO_ASSERT_SHARED_CAPABILITY(x) \
  IPSO_THREAD_ANNOTATION(assert_shared_capability(x))
#define IPSO_RETURN_CAPABILITY(x) IPSO_THREAD_ANNOTATION(lock_returned(x))
#define IPSO_NO_THREAD_SAFETY_ANALYSIS \
  IPSO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ipso::sync {

#if defined(IPSO_SYNC_STATS)

/// One named mutex's counters, snapshotted by profile(). Contention is
/// approximate by design (try_lock-then-lock), which is exactly what a
/// lock-splitting decision needs: which locks are fought over, not a cycle
/// count.
struct MutexProfile {
  std::string name;
  std::uint64_t acquisitions = 0;  ///< exclusive lock() completions
  std::uint64_t contended = 0;     ///< lock() calls that had to wait
  std::uint64_t hold_ns = 0;       ///< summed exclusive hold time
};

namespace detail {

struct MutexCounters {
  std::string name;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint64_t hold_ns = 0;
};

/// Registry of live named mutexes. Registration/deregistration and
/// snapshots are rare; counter updates happen under the owning mutex
/// itself so plain fields suffice (no atomics, no extra cache traffic).
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  void add(MutexCounters* c) {
    std::lock_guard<std::mutex> lk(mu_);
    live_.push_back(c);
  }

  void remove(MutexCounters* c) {
    std::lock_guard<std::mutex> lk(mu_);
    // Fold the dying mutex's totals into the retired bucket so a profile
    // taken after short-lived engines (bench replicas) still sees them.
    retired_.push_back(MutexProfile{c->name, c->acquisitions, c->contended,
                                    c->hold_ns});
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (*it == c) {
        live_.erase(it);
        break;
      }
    }
  }

  std::vector<MutexProfile> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<MutexProfile> out = retired_;
    for (const MutexCounters* c : live_) {
      out.push_back(
          MutexProfile{c->name, c->acquisitions, c->contended, c->hold_ns});
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::vector<MutexCounters*> live_;
  std::vector<MutexProfile> retired_;
};

}  // namespace detail

constexpr bool stats_compiled_in() noexcept { return true; }

/// Point-in-time counters for every named mutex (live + destroyed).
inline std::vector<MutexProfile> profile() {
  return detail::Registry::instance().snapshot();
}

#else  // !IPSO_SYNC_STATS

struct MutexProfile {
  std::string name;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint64_t hold_ns = 0;
};

constexpr bool stats_compiled_in() noexcept { return false; }

/// Stats are compiled out: always empty (bench prints a notice instead).
inline std::vector<MutexProfile> profile() { return {}; }

#endif  // IPSO_SYNC_STATS

/// Annotated exclusive mutex. Construct with a name to opt into contention
/// counters under -DIPSO_SYNC_STATS=ON; unnamed (the default) it is a plain
/// std::mutex in every build.
class IPSO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

#if defined(IPSO_SYNC_STATS)
  explicit Mutex(std::string name) {
    counters_.name = std::move(name);
    if (!counters_.name.empty()) {
      registered_ = true;
      detail::Registry::instance().add(&counters_);
    }
  }
  ~Mutex() {
    if (registered_) detail::Registry::instance().remove(&counters_);
  }
#else
  explicit Mutex(const std::string&) {}
  ~Mutex() = default;
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IPSO_ACQUIRE() {
#if defined(IPSO_SYNC_STATS)
    if (registered_) {
      if (!mu_.try_lock()) {
        mu_.lock();
        ++counters_.contended;  // under the lock now; plain field is safe
      }
      ++counters_.acquisitions;
      held_since_ = std::chrono::steady_clock::now();
      return;
    }
#endif
    mu_.lock();
  }

  void unlock() IPSO_RELEASE() {
#if defined(IPSO_SYNC_STATS)
    if (registered_) {
      counters_.hold_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - held_since_)
              .count());
    }
#endif
    mu_.unlock();
  }

  bool try_lock() IPSO_TRY_ACQUIRE(true) {
#if defined(IPSO_SYNC_STATS)
    if (registered_) {
      if (!mu_.try_lock()) return false;
      ++counters_.acquisitions;
      held_since_ = std::chrono::steady_clock::now();
      return true;
    }
#endif
    return mu_.try_lock();
  }

  /// Escape hatch for asserting "I hold this" to the analysis at runtime
  /// boundaries it cannot see across (callback seams). Use sparingly.
  void assert_held() const IPSO_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
#if defined(IPSO_SYNC_STATS)
  bool registered_ = false;
  std::chrono::steady_clock::time_point held_since_{};
  detail::MutexCounters counters_;
#endif
};

/// Annotated reader/writer mutex (no stats instrumentation: none of the
/// current shared-lock sites are contention suspects; add it when one is).
class IPSO_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() IPSO_ACQUIRE() { mu_.lock(); }
  void unlock() IPSO_RELEASE() { mu_.unlock(); }
  bool try_lock() IPSO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() IPSO_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() IPSO_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() IPSO_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void assert_held() const IPSO_ASSERT_CAPABILITY(this) {}
  void assert_held_shared() const IPSO_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive guard over Mutex, with the early-unlock / re-lock shape
/// the engine and cache need. The destructor releases iff still held, and
/// the analysis tracks the scoped state across unlock()/lock() pairs.
class IPSO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IPSO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() IPSO_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before scope exit (e.g. to invoke a user callback unlocked).
  void unlock() IPSO_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  /// Re-acquires after an early unlock().
  void lock() IPSO_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// RAII exclusive guard over SharedMutex (writer side).
class IPSO_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) IPSO_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() IPSO_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared guard over SharedMutex (reader side).
class IPSO_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) IPSO_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() IPSO_RELEASE_SHARED() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable that waits on a sync::Mutex directly (the Mutex is a
/// Lockable, so condition_variable_any parks on it without an unannotated
/// unique_lock detour). Callers hold the mutex across wait() — exactly the
/// capability state the analysis expects — and the internal unlock/relock
/// happens inside the std implementation, invisible to the checker.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until notified; `mu` must be held (and is held again on
  /// return). Spurious wakeups happen — prefer the predicate overload.
  void wait(Mutex& mu) IPSO_REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until `pred()` is true, re-checking under the mutex after
  /// every wakeup. The predicate runs with `mu` held.
  template <class Predicate>
  void wait(Mutex& mu, Predicate pred) IPSO_REQUIRES(mu) {
    while (!pred()) cv_.wait(mu);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ipso::sync
