#include "core/tradeoff.h"

#include "core/contracts.h"
#include "core/model.h"

#include <stdexcept>

namespace ipso {

double scale_up_speedup(double k) noexcept { return k; }

std::vector<ScaleChoice> compare_scaling(const ScalingFactors& f, Eta eta,
                                         std::span<const double> ks) {
  std::vector<ScaleChoice> out;
  out.reserve(ks.size());
  for (double k : ks) {
    ScaleChoice c;
    c.k = k;
    c.scale_out = speedup_deterministic(f, eta, k);
    c.scale_up = scale_up_speedup(k);
    c.advantage_out = c.scale_out - c.scale_up;
    out.push_back(c);
  }
  return out;
}

double scale_out_competitive_limit(const ScalingFactors& f, Eta eta,
                                   double frac, double k_max) {
  IPSO_EXPECTS(frac > 0.0 && frac <= 1.0,
               "scale_out_competitive_limit: frac in (0,1]");
  IPSO_EXPECTS(k_max >= 1.0, "scale_out_competitive_limit: k_max >= 1");
  // S(k)/k is non-increasing for every IPSO curve (efficiency never
  // improves with scale-out), so bisect on the predicate S(k) >= frac*k.
  auto competitive = [&](double k) {
    return speedup_deterministic(f, eta, k) >= frac * k;
  };
  if (!competitive(1.0)) return 1.0;
  if (competitive(k_max)) return k_max;
  double lo = 1.0, hi = k_max;
  for (int iter = 0; iter < 100 && hi - lo > 1e-6; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (competitive(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace ipso
