#include "core/workload.h"

namespace ipso {

std::string_view to_string(WorkloadType t) noexcept {
  switch (t) {
    case WorkloadType::kFixedSize:
      return "fixed-size";
    case WorkloadType::kFixedTime:
      return "fixed-time";
    case WorkloadType::kMemoryBounded:
      return "memory-bounded";
  }
  return "unknown";
}

}  // namespace ipso
