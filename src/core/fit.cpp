#include "core/fit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ipso {

/// Last max(size/2, min_points) points of a series (the asymptotic tail of a
/// geometric sweep).
stats::Series tail_half(const stats::Series& s, std::size_t min_points);

Expected<stats::Series> epsilon_series(const stats::Series& ex,
                                       const stats::Series& in) {
  if (ex.size() != in.size()) return FitError::kLengthMismatch;
  stats::Series out("epsilon(n)");
  for (std::size_t i = 0; i < ex.size(); ++i) {
    if (ex[i].x != in[i].x) return FitError::kMisalignedSeries;
    if (in[i].y <= 0.0) return FitError::kNonPositiveValue;
    out.add(ex[i].x, ex[i].y / in[i].y);
  }
  return out;
}

Expected<stats::Series> q_series_from_workloads(const stats::Series& wo,
                                                const stats::Series& wp) {
  if (wo.size() != wp.size()) return FitError::kLengthMismatch;
  stats::Series out("q(n)");
  for (std::size_t i = 0; i < wo.size(); ++i) {
    if (wo[i].x != wp[i].x) return FitError::kMisalignedSeries;
    if (wp[i].y <= 0.0) return FitError::kNonPositiveValue;
    out.add(wo[i].x, wo[i].y * wo[i].x / wp[i].y);
  }
  return out;
}

Expected<stats::SegmentedFit> detect_in_changepoint(const stats::Series& in,
                                                    std::size_t min_seg) {
  if (in.size() < 2 * min_seg) return FitError::kInsufficientData;
  stats::SegmentedFit seg;
  try {
    seg = stats::fit_segmented(in, min_seg);
  } catch (const std::invalid_argument&) {
    return FitError::kFitFailed;
  }
  if (!seg.has_breakpoint()) return FitError::kNoChangepoint;
  // The segmented model must beat a single line by a clear margin, or the
  // "changepoint" is just noise.
  stats::LinearFit single;
  try {
    single = stats::fit_linear(in);
  } catch (const std::invalid_argument&) {
    return seg;
  }
  const double single_sse = stats::sse(in, single);
  if (seg.sse < 0.5 * single_sse) return seg;
  return FitError::kNoChangepoint;
}

Expected<FactorFits> fit_factors(WorkloadType type,
                                 const FactorMeasurements& m) {
  // Reject out-of-domain η at the boundary with a named error: silently
  // fitting under η ∉ [0,1] would produce a plausible-but-wrong taxonomy
  // (the classifier's η = 1 boundary separates Eq. 16 from Eq. 17).
  if (!Eta::try_make(m.eta).has_value()) return FitError::kOutOfDomain;
  FactorFits out;
  out.params.type = type;
  out.params.eta = m.eta;

  if (m.eta < 1.0 && !m.in.empty()) {
    // ε(n) = α·n^δ only asymptotically; fitting the tail of the measured
    // ratio keeps a saturating ε (δ -> 0) from reading as a growing one.
    const Expected<stats::Series> eps = epsilon_series(m.ex, m.in);
    if (!eps) return eps.error();
    const stats::Series eps_tail = tail_half(*eps, 3);
    try {
      out.epsilon_fit = stats::fit_power(eps_tail);
    } catch (const std::invalid_argument&) {
      return FitError::kFitFailed;
    }
    out.params.alpha = out.epsilon_fit.coeff;
    out.params.delta = out.epsilon_fit.exponent;

    // The paper's domain is 0 <= delta <= 1 ("IN(n) is unlikely to scale
    // down or scale up superlinearly fast"). Raw fits can step outside it —
    // e.g. a step-wise IN(n) makes the epsilon tail dip — so clamp delta
    // and refit alpha as the tail level consistent with the clamped
    // exponent.
    if (out.params.delta < 0.0 || out.params.delta > 1.0) {
      out.params.delta = std::clamp(out.params.delta, 0.0, 1.0);
      double acc = 0.0;
      for (const auto& p : eps_tail) {
        acc += p.y / std::pow(p.x, out.params.delta);
      }
      out.params.alpha = acc / static_cast<double>(eps_tail.size());
    }

    try {
      out.in_linear = stats::fit_linear(m.in);
    } catch (const std::invalid_argument&) {
      out.in_linear = FitError::kFitFailed;
    }
    out.in_segmented = detect_in_changepoint(m.in);
    out.in_has_changepoint = out.in_segmented.has_value();
  } else {
    // η = 1: ε is undefined (paper remark under Eq. 16); α cancels.
    out.params.alpha = 1.0;
    out.params.delta = type == WorkloadType::kFixedSize ? 0.0 : 1.0;
    out.epsilon_fit = {1.0, out.params.delta, 1.0};
    out.in_linear = m.in.empty() ? FitError::kNotMeasured
                                 : FitError::kNoSerialComponent;
    out.in_segmented = FitError::kNoSerialComponent;
  }

  if (type == WorkloadType::kFixedSize) {
    // Without external scaling the serial portion cannot scale either;
    // anything that grows with n is scale-out-induced (paper Section IV).
    out.params.delta = 0.0;
  }

  // q(n): keep only n > 1 (q(1) = 0 carries no log-fit information) and
  // require a non-negligible magnitude before declaring scale-out scaling.
  // The paper does the same: it measures Wo for all four MapReduce cases,
  // finds it "negligibly small" and drops it. Without a threshold, the few
  // milliseconds of dispatch cost every real system has would classify
  // every workload as pathological at some astronomically large n.
  constexpr double kNegligibleQ = 0.15;
  stats::Series q_pos("q(n>1)");
  double q_max = 0.0;
  for (const auto& p : m.q) {
    if (p.x > 1.0 && p.y > 0.0) {
      q_pos.add(p.x, p.y);
      q_max = std::max(q_max, p.y);
    }
  }
  if (q_pos.size() >= 2 && q_max > kNegligibleQ) {
    // Fit gamma on the tail: q(n) = beta*n^gamma holds asymptotically
    // (Eq. 15), and small-n points distort the exponent. The fit is bound to
    // a local before entering q_fit so no Expected is dereferenced — the
    // lint wall bans unchecked access paths in src/ even when a preceding
    // assignment makes them safe.
    stats::PowerFit q_power;
    try {
      q_power = stats::fit_power(tail_half(q_pos, 3));
    } catch (const std::invalid_argument&) {
      return FitError::kFitFailed;
    }
    out.q_fit = q_power;
    out.params.beta = q_power.coeff;
    out.params.gamma = q_power.exponent;
  } else {
    // Distinguish "Wo was never measured" from "measured and negligible" —
    // the paper's MapReduce cases are all the latter.
    out.q_fit = m.q.empty() ? FitError::kNotMeasured
                            : FitError::kNegligibleOverhead;
    out.params.beta = 0.0;
    out.params.gamma = 0.0;
  }
  return out;
}

stats::Series tail_half(const stats::Series& s, std::size_t min_points) {
  if (s.size() <= min_points) return s;
  const std::size_t keep = std::max(min_points, s.size() / 2);
  stats::Series tail(s.name() + " tail");
  for (std::size_t i = s.size() - keep; i < s.size(); ++i) {
    tail.add(s[i].x, s[i].y);
  }
  return tail;
}

Expected<stats::PowerFit> fit_tail_growth(const stats::Series& speedup) {
  if (speedup.size() < 3) return FitError::kInsufficientData;
  // Experiment sweeps are usually geometric in n, so "the tail" is the last
  // half of the points, not the upper half of the x-range (which would keep
  // a single point).
  try {
    return stats::fit_power(tail_half(speedup, 3));
  } catch (const std::invalid_argument&) {
    return FitError::kFitFailed;
  }
}

}  // namespace ipso
