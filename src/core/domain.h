#pragma once

#include "core/contracts.h"

#include <limits>
#include <optional>

/// \file domain.h
/// Domain-typed model parameters. The IPSO parameter space (paper Section IV)
/// is not ℝ⁵: each parameter has a domain the taxonomy depends on, and the
/// classification boundaries (γ = 1, δ = 0, η = 1) separate the It–IVt /
/// Is–IVs types. A silently out-of-domain value used to produce a
/// plausible-but-wrong speedup curve; these wrappers make the domain part of
/// the signature instead:
///
///   Eta        η ∈ [0, 1]   parallelizable fraction at n = 1 (Eq. 9/11)
///   Alpha      α > 0        coefficient of ε(n) ≈ α·n^δ        (Eq. 14)
///   Delta      δ ∈ [0, 1]   exponent of ε(n)                   (Eq. 14)
///   Beta       β ≥ 0        coefficient of q(n) ≈ β·n^γ        (Eq. 15)
///   Gamma      γ ≥ 0        exponent of q(n)                   (Eq. 15)
///   NodeCount  n ≥ 1        scale-out degree
///
/// Each type converts implicitly from and to double, so call sites keep
/// reading `speedup_deterministic(f, 0.9, n)` — but the conversion *into*
/// the type validates: a constexpr out-of-domain literal is a compile error
/// (`constexpr Delta d{1.5};` is ill-formed), and a runtime out-of-domain
/// value trips the contract-violation handler (contracts.h) at the API
/// boundary it crossed. Parsers that must not throw use try_make(), which
/// returns nullopt for out-of-domain input so the caller can surface a named
/// FitError / protocol error instead.
///
/// NaN never validates (every comparison below is false for NaN), so NaN
/// taxonomy cannot propagate past a domain-typed boundary. All checks
/// compile out under -DIPSO_CONTRACTS=OFF.

namespace ipso {

namespace domain_detail {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace domain_detail

#define IPSO_DOMAIN_TYPE_(Name, lo_ok, hi_ok, domain_text)                    \
  class Name {                                                                \
   public:                                                                    \
    /* implicit: domain-typed APIs stay drop-in for double call sites */      \
    constexpr Name(double v) /* NOLINT(google-explicit-constructor): */       \
        /* implicit conversion is the migration path for ~200 call sites */   \
        : v_(::ipso::contracts::checked_domain(v, valid(v), domain_text,      \
                                               #Name)) {}                     \
    /** True iff v lies in the documented domain (false for NaN). */          \
    static constexpr bool valid(double v) noexcept {                          \
      return (lo_ok) && (hi_ok);                                              \
    }                                                                         \
    /** Validated construction without the violation handler: nullopt for     \
        out-of-domain input, for parsers that report named errors. */         \
    static constexpr std::optional<Name> try_make(double v) noexcept {        \
      if (!valid(v)) return std::nullopt;                                     \
      return Name(v, Unchecked{});                                            \
    }                                                                         \
    /** The documented domain, for error messages ("α > 0", ...). */          \
    static constexpr const char* domain() noexcept { return domain_text; }    \
    constexpr double get() const noexcept { return v_; }                      \
    constexpr operator double() const noexcept { return v_; }                 \
                                                                              \
   private:                                                                   \
    struct Unchecked {};                                                      \
    constexpr Name(double v, Unchecked) noexcept : v_(v) {}                   \
    double v_;                                                                \
  }

/// η ∈ [0, 1]: parallelizable fraction of the n = 1 workload (Eq. 9/11).
/// η = 1 (no serial portion) selects Eq. 17 and makes ε(n) undefined; the
/// serve protocol additionally rejects η = 0 at its boundary.
IPSO_DOMAIN_TYPE_(Eta, v >= 0.0, v <= 1.0, "η must be in [0,1]");

/// α > 0 and finite: coefficient of the in-proportion ratio ε(n) ≈ α·n^δ.
IPSO_DOMAIN_TYPE_(Alpha, v > 0.0, v < domain_detail::kInf, "α must be > 0");

/// δ ∈ [0, 1]: ε-exponent; δ = 0 for fixed-size workloads, and the paper
/// bounds it by 1 ("IN(n) is unlikely to scale up superlinearly fast").
IPSO_DOMAIN_TYPE_(Delta, v >= 0.0, v <= 1.0, "δ must be in [0,1]");

/// β ≥ 0 and finite: coefficient of q(n) ≈ β·n^γ; β = 0 means q = 0.
IPSO_DOMAIN_TYPE_(Beta, v >= 0.0, v < domain_detail::kInf, "β must be >= 0");

/// γ ≥ 0 and finite: q-exponent. γ = 0 encodes "no scale-out-induced
/// workload" (paper convention); γ = 1 and γ > 1 are taxonomy boundaries.
IPSO_DOMAIN_TYPE_(Gamma, v >= 0.0, v < domain_detail::kInf,
                  "γ must be >= 0");

/// n ≥ 1 and finite: scale-out degree. Real deployments use integers, but
/// the model and every sweep treat n as continuous, so this wraps double.
IPSO_DOMAIN_TYPE_(NodeCount, v >= 1.0, v < domain_detail::kInf,
                  "n must be >= 1");

#undef IPSO_DOMAIN_TYPE_

}  // namespace ipso
