#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

/// \file expected.h
/// A minimal `Expected<T, E>` result type used by the fitting and diagnosis
/// entry points. Historically those APIs mixed `std::optional` with
/// silently-empty series, so a caller could not tell "no q(n) was measured"
/// apart from "q(n) was measured but the fit failed". `Expected` carries the
/// reason on the error path while keeping the optional-like observer surface
/// (`has_value`, `operator bool`, `operator*`, `operator->`, `value_or`) so
/// call sites read the same as before.

namespace ipso {

/// Why a fit (or a whole diagnosis) did not produce a value.
enum class FitError {
  kNotMeasured,        ///< the input series was never measured (absent)
  kInsufficientData,   ///< too few points for the requested fit
  kLengthMismatch,     ///< paired series have different lengths
  kMisalignedSeries,   ///< paired series have different x values
  kNonPositiveValue,   ///< a ratio denominator or log-fit input was <= 0
  kNegligibleOverhead, ///< q(n) measured but below the paper's threshold
  kNoSerialComponent,  ///< eta = 1: IN(n) is undefined (Eq. 16 remark)
  kNoChangepoint,      ///< segmented fit does not beat a single line
  kFitFailed,          ///< the underlying regression rejected the data
  kOutOfDomain,        ///< an input parameter violates its paper domain
                       ///< (e.g. η outside [0,1]); see core/domain.h
};

/// Human-readable error name (used in exception messages and reports).
constexpr const char* to_string(FitError e) noexcept {
  switch (e) {
    case FitError::kNotMeasured: return "not measured";
    case FitError::kInsufficientData: return "insufficient data";
    case FitError::kLengthMismatch: return "series length mismatch";
    case FitError::kMisalignedSeries: return "series x values differ";
    case FitError::kNonPositiveValue: return "non-positive value";
    case FitError::kNegligibleOverhead: return "negligible overhead";
    case FitError::kNoSerialComponent: return "no serial component (eta = 1)";
    case FitError::kNoChangepoint: return "no changepoint";
    case FitError::kFitFailed: return "fit failed";
    case FitError::kOutOfDomain: return "parameter out of domain";
  }
  return "unknown";
}

namespace detail {

inline std::string expected_error_text(FitError e) {
  return std::string("Expected: value requested but holds error: ") +
         to_string(e);
}

template <typename E>
std::string expected_error_text(const E&) {
  return "Expected: value requested but holds an error";
}

}  // namespace detail

/// Either a value of type T or an error of type E (default FitError).
/// Accessing the value while holding an error throws std::runtime_error
/// naming the error, so misuse fails loudly instead of reading garbage.
template <typename T, typename E = FitError>
class [[nodiscard]] Expected {
  static_assert(!std::is_same_v<T, E>, "Expected<T, E> requires T != E");

 public:
  /// Implicit from a value or an error, so `return fit;` and
  /// `return FitError::kInsufficientData;` both work.
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : state_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool has_value() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  /// Throwing accessors: misuse fails loudly rather than reading garbage.
  /// Library code under src/ must branch on has_value() and surface a named
  /// error instead — the lint wall (tools/lint/run_lint.py, rule
  /// expected-unchecked-value) enforces this; tests, benches and examples
  /// may use value() as a crash-on-error assertion.
  [[nodiscard]] T& value() & { ensure(); return std::get<0>(state_); }
  [[nodiscard]] const T& value() const& { ensure(); return std::get<0>(state_); }
  [[nodiscard]] T&& value() && { ensure(); return std::get<0>(std::move(state_)); }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// The error; throws std::logic_error when a value is held.
  [[nodiscard]] const E& error() const {
    if (has_value()) {
      throw std::logic_error("Expected::error: holds a value");
    }
    return std::get<1>(state_);
  }

  template <typename U>
  T value_or(U&& fallback) const& {
    return has_value() ? std::get<0>(state_)
                       : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  void ensure() const {
    if (!has_value()) {
      throw std::runtime_error(
          detail::expected_error_text(std::get<1>(state_)));
    }
  }

  std::variant<T, E> state_;
};

}  // namespace ipso
