#pragma once

#include "core/classify.h"
#include "core/fit.h"
#include "stats/series.h"

#include <optional>
#include <string>

/// \file diagnose.h
/// The six-step diagnostic procedure of paper Section V: given a measured
/// speedup curve (and, when available, measured scaling factors), identify
/// the scaling type and its root cause.

namespace ipso {

/// Empirical shape judgement from the speedup curve alone (steps 2-4).
struct EmpiricalShape {
  GrowthShape shape = GrowthShape::kLinear;
  double tail_exponent = 1.0;  ///< fitted e in S(n) ≈ c·n^e on the tail
  bool monotone = true;
  bool peaked = false;
  std::string note;  ///< e.g. "needs more data to separate It from IIt"
};

/// Judges the curve shape from data alone. Thresholds: e >= linear_min (0.9)
/// -> linear; e <= bounded_max (0.15) -> saturating/bounded; in between ->
/// sublinear; an interior peak with a falling tail -> peaked.
EmpiricalShape judge_shape(const stats::Series& speedup,
                           double linear_min = 0.9, double bounded_max = 0.15);

/// Full diagnostic report (steps 1-6).
struct DiagnosticReport {
  WorkloadType workload = WorkloadType::kFixedTime;
  EmpiricalShape empirical;                   ///< from the curve alone
  std::optional<FactorFits> fits;             ///< step 6, when factors given
  std::optional<Classification> matched;      ///< exact type, when available
  ScalingType best_guess = ScalingType::kIt;  ///< final answer
  std::string summary;                        ///< multi-line human report
};

/// Runs the diagnostic procedure. `factors` enables step 6 (pinning down
/// III sub-types and exact parameters); without it the report is based on
/// the curve shape only, exactly as the paper prescribes.
DiagnosticReport diagnose(WorkloadType workload, const stats::Series& speedup,
                          const std::optional<FactorMeasurements>& factors =
                              std::nullopt);

}  // namespace ipso
