#pragma once

#include "core/classify.h"
#include "core/expected.h"
#include "core/fit.h"
#include "stats/series.h"

#include <string>

/// \file diagnose.h
/// The six-step diagnostic procedure of paper Section V: given a measured
/// speedup curve (and, when available, measured scaling factors), identify
/// the scaling type and its root cause. Entry points return Expected so a
/// caller can tell an unusable curve (too few points) from a usable one,
/// and a report's absent factor analysis carries the reason (factors never
/// measured vs. the fit failed).

namespace ipso {

/// Empirical shape judgement from the speedup curve alone (steps 2-4).
struct EmpiricalShape {
  GrowthShape shape = GrowthShape::kLinear;
  double tail_exponent = 1.0;  ///< fitted e in S(n) ≈ c·n^e on the tail
  bool monotone = true;
  bool peaked = false;
  std::string note;  ///< e.g. "needs more data to separate It from IIt"
};

/// Judges the curve shape from data alone. Thresholds: e >= linear_min (0.9)
/// -> linear; e <= bounded_max (0.15) -> saturating/bounded; in between ->
/// sublinear; an interior peak with a falling tail -> peaked. Errors:
/// kInsufficientData (< 3 points), kFitFailed.
[[nodiscard]] Expected<EmpiricalShape> judge_shape(
    const stats::Series& speedup, double linear_min = 0.9,
    double bounded_max = 0.15);

/// Full diagnostic report (steps 1-6).
struct DiagnosticReport {
  WorkloadType workload = WorkloadType::kFixedTime;
  EmpiricalShape empirical;  ///< from the curve alone
  /// Step 6 factor fits. kNotMeasured when no factors were supplied;
  /// otherwise carries fit_factors' error when the fit failed.
  Expected<FactorFits> fits = FitError::kNotMeasured;
  /// Exact type match; absent for the same reasons as `fits`.
  Expected<Classification> matched = FitError::kNotMeasured;
  ScalingType best_guess = ScalingType::kIt;  ///< final answer
  std::string summary;                        ///< multi-line human report
};

/// Runs the diagnostic procedure from the curve shape only, exactly as the
/// paper prescribes when no factor measurements exist. Errors:
/// kInsufficientData (< 3 speedup points), kFitFailed.
[[nodiscard]] Expected<DiagnosticReport> diagnose(
    WorkloadType workload, const stats::Series& speedup);

/// Runs the full procedure: `factors` enables step 6 (pinning down III
/// sub-types and exact parameters). A failed factor fit is not fatal — the
/// report falls back to the shape-based guess and `report.fits` carries the
/// reason.
[[nodiscard]] Expected<DiagnosticReport> diagnose(
    WorkloadType workload, const stats::Series& speedup,
    const FactorMeasurements& factors);

}  // namespace ipso
