#include "core/classify.h"

#include "core/contracts.h"
#include "core/model.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ipso {

std::string_view to_string(ScalingType t) noexcept {
  switch (t) {
    case ScalingType::kIt:
      return "It";
    case ScalingType::kIIt:
      return "IIt";
    case ScalingType::kIIIt1:
      return "IIIt,1";
    case ScalingType::kIIIt2:
      return "IIIt,2";
    case ScalingType::kIVt:
      return "IVt";
    case ScalingType::kIs:
      return "Is";
    case ScalingType::kIIs:
      return "IIs";
    case ScalingType::kIIIs1:
      return "IIIs,1";
    case ScalingType::kIIIs2:
      return "IIIs,2";
    case ScalingType::kIVs:
      return "IVs";
  }
  return "?";
}

GrowthShape shape_of(ScalingType t) noexcept {
  switch (t) {
    case ScalingType::kIt:
    case ScalingType::kIs:
      return GrowthShape::kLinear;
    case ScalingType::kIIt:
    case ScalingType::kIIs:
      return GrowthShape::kSublinear;
    case ScalingType::kIIIt1:
    case ScalingType::kIIIt2:
    case ScalingType::kIIIs1:
    case ScalingType::kIIIs2:
      return GrowthShape::kBounded;
    case ScalingType::kIVt:
    case ScalingType::kIVs:
      return GrowthShape::kPeaked;
  }
  return GrowthShape::kLinear;
}

namespace {

/// One power-law term coeff·n^exp of the asymptotic numerator/denominator.
struct Term {
  double coeff = 0.0;
  double exp = 0.0;
  bool is_scale_out = false;  ///< true for the η·α·β·n^(δ-1+γ) term
};

/// Dominant exponent of a term list and the summed coefficient of every term
/// within `tol` of it. Also reports whether the scale-out term participates.
struct Dominant {
  double exp = -std::numeric_limits<double>::infinity();
  double coeff = 0.0;
  bool scale_out_dominant = false;
};

Dominant dominant(const std::vector<Term>& terms, double tol) {
  Dominant d;
  for (const auto& t : terms) {
    if (t.coeff <= 0.0) continue;
    if (t.exp > d.exp + tol) d.exp = t.exp;
  }
  for (const auto& t : terms) {
    if (t.coeff <= 0.0) continue;
    if (std::abs(t.exp - d.exp) <= tol) {
      d.coeff += t.coeff;
      if (t.is_scale_out) d.scale_out_dominant = true;
    }
  }
  return d;
}

ScalingType name_type(WorkloadType wt, GrowthShape shape,
                      bool scale_out_in_bound) {
  // Memory-bounded behaves like fixed-time for data-intensive workloads
  // (paper Section IV: g(n) ≈ n), so it shares the *t names.
  const bool fixed_size = wt == WorkloadType::kFixedSize;
  switch (shape) {
    case GrowthShape::kLinear:
      return fixed_size ? ScalingType::kIs : ScalingType::kIt;
    case GrowthShape::kSublinear:
      return fixed_size ? ScalingType::kIIs : ScalingType::kIIt;
    case GrowthShape::kBounded:
      if (fixed_size) {
        return scale_out_in_bound ? ScalingType::kIIIs2 : ScalingType::kIIIs1;
      }
      return scale_out_in_bound ? ScalingType::kIIIt2 : ScalingType::kIIIt1;
    case GrowthShape::kPeaked:
      return fixed_size ? ScalingType::kIVs : ScalingType::kIVt;
  }
  return ScalingType::kIt;
}

std::string make_rationale(const AsymptoticParams& p,
                           const Classification& c) {
  std::ostringstream os;
  os << "workload=" << to_string(p.type) << ", type " << to_string(c.type)
     << ": ";
  switch (c.shape) {
    case GrowthShape::kLinear:
      os << "speedup grows linearly (slope " << c.slope
         << "); no scale-out-induced workload dominates and ";
      os << (p.eta >= 1.0 ? "there is no serial portion (eta=1)."
                          : "the serial portion does not scale relative to "
                            "the parallel portion (delta~1).");
      break;
    case GrowthShape::kSublinear:
      os << "speedup is unbounded but sublinear; the scale-out-induced "
            "factor q(n)~beta*n^gamma grows with gamma="
         << p.gamma << " < 1.";
      break;
    case GrowthShape::kBounded:
      os << "speedup is upper-bounded by " << c.bound << "; ";
      if (c.type == ScalingType::kIIIt1) {
        os << "in-proportion scaling (delta~0: the serial merge grows as "
              "fast as the parallel portion) caps the speedup at "
              "(eta*alpha+1-eta)/(1-eta).";
      } else if (c.type == ScalingType::kIIIt2 ||
                 c.type == ScalingType::kIIIs2) {
        os << "linearly growing scale-out-induced workload (gamma~1) "
              "enters the bound.";
      } else {
        os << "Amdahl-like: the constant serial fraction caps the speedup "
              "(Amdahl's law is the special case gamma=0, alpha=1).";
      }
      break;
    case GrowthShape::kPeaked:
      os << "PATHOLOGICAL: q(n) grows superlinearly (gamma=" << p.gamma
         << " > 1), so speedup peaks at n~" << c.peak_n << " (S~"
         << c.peak_speedup
         << ") and then falls toward zero; scaling out further only hurts.";
      break;
  }
  return os.str();
}

}  // namespace

Peak find_peak(const AsymptoticParams& p, NodeCount n_max) {
  // n_max ≥ 1 is guaranteed by the NodeCount domain type at the boundary.
  // Golden-section search on log(n); S is unimodal in the asymptotic model.
  const double golden = 0.5 * (std::sqrt(5.0) - 1.0);
  double lo = 0.0, hi = std::log(n_max);
  auto eval = [&](double logn) {
    return speedup_asymptotic(p, std::exp(logn));
  };
  double x1 = hi - golden * (hi - lo);
  double x2 = lo + golden * (hi - lo);
  double f1 = eval(x1), f2 = eval(x2);
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-10; ++iter) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + golden * (hi - lo);
      f2 = eval(x2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - golden * (hi - lo);
      f1 = eval(x1);
    }
  }
  Peak peak;
  peak.n = std::exp(0.5 * (lo + hi));
  peak.speedup = speedup_asymptotic(p, peak.n);
  // Endpoints can beat the interior probe for monotone curves.
  const double s1 = speedup_asymptotic(p, 1.0);
  const double sN = speedup_asymptotic(p, n_max);
  if (s1 > peak.speedup) peak = {1.0, s1};
  if (sN > peak.speedup) peak = {n_max, sN};
  return peak;
}

Peak analytic_peak_eta_one(Beta beta, Gamma gamma) {
  if (gamma <= 1.0 || beta <= 0.0) {
    throw std::invalid_argument(
        "analytic_peak_eta_one: need gamma > 1 and beta > 0");
  }
  // d/dn [n/(1+beta n^gamma)] = 0  <=>  beta·n^gamma·(gamma-1) = 1.
  Peak pk;
  pk.n = std::pow(1.0 / (beta * (gamma - 1.0)), 1.0 / gamma);
  pk.speedup = pk.n * (gamma - 1.0) / gamma;
  return pk;
}

Classification classify(const AsymptoticParams& p, double tol) {
  IPSO_EXPECTS(Eta::valid(p.eta), "classify: eta must be in [0,1]");
  IPSO_EXPECTS(p.alpha >= 0.0 && p.beta >= 0.0 && p.gamma >= 0.0,
               "classify: negative coefficient");

  // Build the power-law terms of Eq. 16's numerator and denominator. At
  // η = 1 the ε-ratio is undefined (paper remark below Eq. 16); α then
  // cancels, so any positive value works — use 1.
  const double alpha = p.eta >= 1.0 ? 1.0 : p.alpha;
  const double delta = p.type == WorkloadType::kFixedSize ? 0.0 : p.delta;
  const double ea = p.eta * alpha;

  std::vector<Term> num;
  std::vector<Term> den;
  if (ea > 0.0) {
    num.push_back({ea, delta, false});
    den.push_back({ea, delta - 1.0, false});
    if (p.has_scale_out()) {
      den.push_back({ea * p.beta, delta - 1.0 + p.gamma, true});
    }
  }
  if (p.eta < 1.0) {
    num.push_back({1.0 - p.eta, 0.0, false});
    den.push_back({1.0 - p.eta, 0.0, false});
  }

  const Dominant dn = dominant(num, tol);
  const Dominant dd = dominant(den, tol);
  const double growth = dn.exp - dd.exp;

  Classification c;
  if (growth >= 1.0 - tol) {
    c.shape = GrowthShape::kLinear;
    c.slope = dn.coeff / dd.coeff;
    c.bound = std::numeric_limits<double>::infinity();
  } else if (growth > tol) {
    c.shape = GrowthShape::kSublinear;
    c.bound = std::numeric_limits<double>::infinity();
  } else if (growth >= -tol) {
    c.shape = GrowthShape::kBounded;
    c.bound = dn.coeff / dd.coeff;
  } else {
    c.shape = GrowthShape::kPeaked;
    const Peak pk = find_peak(p);
    c.peak_n = pk.n;
    c.peak_speedup = pk.speedup;
    c.bound = pk.speedup;  // finite maximum, then decay
  }
  c.type = name_type(p.type, c.shape, dd.scale_out_dominant);
  c.rationale = make_rationale(p, c);
  return c;
}

double asymptotic_bound(const AsymptoticParams& p, double tol) {
  return classify(p, tol).bound;
}

}  // namespace ipso
