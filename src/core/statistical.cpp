#include "core/statistical.h"

#include <cmath>
#include <stdexcept>

namespace ipso {

double ExponentialTime::expected_max(std::size_t n) const {
  // E[max of n iid Exp(1)] is the harmonic number H_n.
  double h = 0.0;
  for (std::size_t k = 1; k <= n; ++k) h += 1.0 / static_cast<double>(k);
  return h;
}

double ExponentialTime::sample(stats::Rng& rng) const {
  return rng.exponential(1.0);
}

UniformTime::UniformTime(double half_width) : w_(half_width) {
  if (w_ <= 0.0 || w_ > 1.0) {
    throw std::invalid_argument("UniformTime: half_width in (0, 1]");
  }
}

double UniformTime::expected_max(std::size_t n) const {
  const auto nd = static_cast<double>(n);
  return 1.0 + w_ * (nd - 1.0) / (nd + 1.0);
}

double UniformTime::sample(stats::Rng& rng) const {
  return rng.uniform(1.0 - w_, 1.0 + w_);
}

CappedParetoTime::CappedParetoTime(double shape, double cap)
    : shape_(shape), cap_(cap) {
  if (shape_ <= 1.0) {
    throw std::invalid_argument("CappedParetoTime: shape must be > 1");
  }
  if (cap_ <= 1.0) {
    throw std::invalid_argument("CappedParetoTime: cap must be > 1");
  }
  // Truncated mean shared with sim::StragglerModel, so the two
  // normalizations can never drift apart.
  raw_mean_ = stats::capped_pareto_mean(shape_, cap_);
}

double CappedParetoTime::cdf_raw(double x) const noexcept {
  if (x < 1.0) return 0.0;
  if (x >= cap_) return 1.0;
  return 1.0 - std::pow(x, -shape_);
}

double CappedParetoTime::expected_max(std::size_t n) const {
  // E[max] = integral over x of 1 - F(x)^n; the support is [1, cap] so
  // E[max_raw] = 1 + int_1^cap (1 - F(x)^n) dx, by composite Simpson.
  constexpr int kIntervals = 2048;  // even
  const double a = 1.0, b = cap_;
  const double h = (b - a) / kIntervals;
  auto integrand = [&](double x) {
    return 1.0 - std::pow(cdf_raw(x), static_cast<double>(n));
  };
  double acc = integrand(a) + integrand(b);
  for (int i = 1; i < kIntervals; ++i) {
    acc += integrand(a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  const double raw = 1.0 + acc * h / 3.0;
  return raw / raw_mean_;
}

double CappedParetoTime::sample(stats::Rng& rng) const {
  return rng.heavy_tail(1.0, shape_, cap_) / raw_mean_;
}

double speedup_statistical(const ScalingFactors& f, Eta eta,
                           const TaskTimeDistribution& dist, NodeCount n) {
  // η ∈ [0,1] and n ≥ 1 are guaranteed by the domain types at the boundary.
  // E[max of n tasks] is only defined at integer n; everywhere else Eq. 8
  // uses the real-valued n. Rounding n into expected_max would evaluate
  // n = 2.4 and n = 1.6 at the same 2 tasks — instead interpolate E[max]
  // linearly between the bracketing integers so the curve stays continuous
  // and exact at integer n.
  const double fl = std::floor(n);
  const auto lo = static_cast<std::size_t>(fl);
  double emax = dist.expected_max(lo);
  if (n > fl) {
    emax += (n - fl) * (dist.expected_max(lo + 1) - emax);
  }
  const double ex = f.ex(n);
  const double in = f.in(n);
  const double num = eta * ex + (1.0 - eta) * in;
  const double den = eta * (ex / n) * emax +
                     (1.0 - eta) * in + eta * ex * f.q(n) / n;
  return num / den;
}

stats::Series speedup_statistical_curve(const ScalingFactors& f, Eta eta,
                                        const TaskTimeDistribution& dist,
                                        std::span<const double> ns,
                                        std::string name) {
  stats::Series out(std::move(name));
  for (double n : ns) out.add(n, speedup_statistical(f, eta, dist, n));
  return out;
}

}  // namespace ipso
