#pragma once

#include "core/domain.h"
#include "core/scaling_factors.h"
#include "stats/random.h"
#include "stats/series.h"

#include <span>

/// \file statistical.h
/// The statistical form of IPSO (paper Eq. 8). The paper formulates the
/// model statistically "to capture the impact of long-tail effects of task
/// service time on the speedup performance, e.g., due to stragglers or
/// task queuing", and argues (Section IV) that because E[max Tp,i(n)] is
/// bounded when task-time tails are finite, the deterministic model
/// preserves all qualitative conclusions. This module makes both the
/// formula and that argument executable: task-time distributions with
/// analytic or numeric order statistics, the Eq. 8 speedup under any of
/// them, and the deterministic model as the degenerate case.

namespace ipso {

/// A nonnegative task-time distribution, normalized to mean 1 so that the
/// absolute scale lives in the workload (Tp,i(n) = tp(n) · X_i, E[X] = 1).
class TaskTimeDistribution {
 public:
  virtual ~TaskTimeDistribution() = default;

  /// E[max of n i.i.d. draws]; >= 1 and non-decreasing in n.
  virtual double expected_max(std::size_t n) const = 0;

  /// One random draw (for simulation-side use).
  virtual double sample(stats::Rng& rng) const = 0;

  /// Human-readable name for reports.
  virtual const char* name() const = 0;

  /// True when expected_max(n) is bounded as n grows — the condition under
  /// which the paper's deterministic-equals-statistical argument holds.
  virtual bool has_bounded_max() const = 0;
};

/// Every task takes exactly its mean: the deterministic model of Eq. 10.
class DeterministicTime final : public TaskTimeDistribution {
 public:
  double expected_max(std::size_t) const override { return 1.0; }
  double sample(stats::Rng&) const override { return 1.0; }
  const char* name() const override { return "deterministic"; }
  bool has_bounded_max() const override { return true; }
};

/// Exponential(1): an *unbounded* tail — E[max] = H_n ~ ln n. Included to
/// demonstrate what the paper's finite-tail caveat rules out: with this
/// tail even a perfectly parallel fixed-time workload scales as n / ln n.
class ExponentialTime final : public TaskTimeDistribution {
 public:
  double expected_max(std::size_t n) const override;
  double sample(stats::Rng& rng) const override;
  const char* name() const override { return "exponential"; }
  bool has_bounded_max() const override { return false; }
};

/// Uniform on [1-w, 1+w] (0 < w <= 1): E[max] = 1 + w·(n-1)/(n+1) -> 1+w.
class UniformTime final : public TaskTimeDistribution {
 public:
  explicit UniformTime(double half_width);
  double expected_max(std::size_t n) const override;
  double sample(stats::Rng& rng) const override;
  const char* name() const override { return "uniform"; }
  bool has_bounded_max() const override { return true; }

 private:
  double w_;
};

/// Pareto(shape) lower-bounded at x_m and capped at `cap·x_m`, rescaled to
/// mean 1 — the straggler model the simulator uses. The cap keeps E[max]
/// finite (paper: "the tail length of the task response time must be finite
/// in practice"). expected_max integrates 1 - F(x)^n numerically.
class CappedParetoTime final : public TaskTimeDistribution {
 public:
  /// shape > 1; cap > 1 is the max/min ratio of the support.
  CappedParetoTime(double shape, double cap);
  double expected_max(std::size_t n) const override;
  double sample(stats::Rng& rng) const override;
  const char* name() const override { return "capped-pareto"; }
  bool has_bounded_max() const override { return true; }

  /// Raw (pre-normalization) mean of the capped Pareto with x_m = 1.
  double raw_mean() const noexcept { return raw_mean_; }

 private:
  double cdf_raw(double x) const noexcept;  ///< CDF with x_m = 1
  double shape_;
  double cap_;
  double raw_mean_;
};

/// Statistical IPSO speedup (Eq. 8) at scale-out degree n: task times are
/// tp(n)·X_i with X_i ~ dist (mean 1), so
///   S(n) = [η·EX + (1-η)·IN] /
///          [η·(EX/n)·E[max_n X] + (1-η)·IN + η·EX·q/n].
/// With DeterministicTime this is exactly Eq. 10.
[[nodiscard]] double speedup_statistical(const ScalingFactors& f, Eta eta,
                                         const TaskTimeDistribution& dist,
                                         NodeCount n);

/// Convenience curve over a sweep.
[[nodiscard]] stats::Series speedup_statistical_curve(
    const ScalingFactors& f, Eta eta, const TaskTimeDistribution& dist,
    std::span<const double> ns, std::string name = "statistical");

}  // namespace ipso
