#pragma once

#include "core/domain.h"
#include "core/expected.h"
#include "core/scaling_factors.h"
#include "stats/nonlinear.h"
#include "stats/regression.h"
#include "stats/series.h"

/// \file fit.h
/// Estimation of the IPSO scaling factors from measurements — the procedure
/// of paper Section V ("Scaling Prediction"): measure per-phase times at
/// small n, attribute them to Wp/Ws/Wo, then fit EX(n), IN(n) and q(n) by
/// (segmented) linear and log-log regression.
///
/// Every entry point returns Expected instead of throwing or yielding a
/// bare std::optional, so callers can distinguish the reasons a fit is
/// absent — e.g. q(n) was never measured (FitError::kNotMeasured) versus
/// measured-but-negligible (kNegligibleOverhead) versus a failed regression.

namespace ipso {

/// Per-n factor measurements extracted from experiment traces. All series
/// are indexed by the scale-out degree n and normalized so that
/// EX(1) = IN(1) = 1 and q(1) = 0.
struct FactorMeasurements {
  double eta = 1.0;        ///< parallelizable fraction at n = 1 (Eq. 9);
                           ///< fit_factors rejects values outside [0,1]
                           ///< with FitError::kOutOfDomain
  stats::Series ex;        ///< measured EX(n) = Wp(n)/Wp(1)
  stats::Series in;        ///< measured IN(n) = Ws(n)/Ws(1); empty if Ws = 0
  stats::Series q;         ///< measured q(n) = Wo(n)·n/Wp(n); empty if Wo = 0
};

/// Result of fitting the asymptotic power laws to factor measurements.
/// The Expected members carry the reason when a component fit is absent:
///  - q_fit:        kNotMeasured (no q series) or kNegligibleOverhead
///                  (below the paper's threshold — beta is set to 0).
///  - in_linear:    kNoSerialComponent (eta = 1) or kNotMeasured.
///  - in_segmented: kNoChangepoint when IN(n) is adequately straight.
struct FactorFits {
  AsymptoticParams params;              ///< fitted (η, α, δ, β, γ) + type
  stats::PowerFit epsilon_fit;          ///< ε(n) ≈ α·n^δ (Eq. 14)
  Expected<stats::PowerFit> q_fit = FitError::kNotMeasured;  ///< q(n) ≈ β·n^γ (Eq. 15)
  Expected<stats::LinearFit> in_linear = FitError::kNotMeasured;  ///< straight-line IN(n) (Fig. 6)
  Expected<stats::SegmentedFit> in_segmented = FitError::kNotMeasured;  ///< step-wise IN(n) (Fig. 5)
  bool in_has_changepoint = false;      ///< true when IN(n) is step-wise
};

/// Builds the pointwise in-proportion ratio ε(n) = EX(n)/IN(n) from two
/// measured factor series. Errors: kLengthMismatch, kMisalignedSeries,
/// kNonPositiveValue (an IN(n) sample <= 0).
[[nodiscard]] Expected<stats::Series> epsilon_series(const stats::Series& ex,
                                                     const stats::Series& in);

/// Computes q(n) = Wo(n)·n / Wp(n) pointwise from measured workloads.
/// Errors: kLengthMismatch, kMisalignedSeries, kNonPositiveValue.
[[nodiscard]] Expected<stats::Series> q_series_from_workloads(
    const stats::Series& wo, const stats::Series& wp);

/// Fits every scaling factor and assembles AsymptoticParams. `type` selects
/// the external-scaling regime; δ is forced to 0 for fixed-size workloads
/// (paper Section IV). Series may be restricted to small n by the caller
/// (the paper fits on n <= 16, TeraSort on 16..64). Errors: kOutOfDomain
/// (measured η outside [0,1]), kLengthMismatch (EX vs IN),
/// kMisalignedSeries, kNonPositiveValue, kInsufficientData, kFitFailed (a
/// regression rejected its input).
[[nodiscard]] Expected<FactorFits> fit_factors(WorkloadType type,
                                               const FactorMeasurements& m);

/// Detects a step-wise changepoint in IN(n) (Fig. 5: TeraSort's reducer
/// memory overflow). Errors: kInsufficientData (< 2*min_seg points),
/// kNoChangepoint (the two segments do not beat a single line).
[[nodiscard]] Expected<stats::SegmentedFit> detect_in_changepoint(
    const stats::Series& in, std::size_t min_seg = 3);

/// Fits the empirical growth exponent of a measured speedup curve's tail:
/// S(n) ≈ c·n^e over the upper half of the x-range. Used by the diagnostic
/// procedure to judge linear/sublinear/saturating growth from data alone.
/// Errors: kInsufficientData (< 3 points), kFitFailed.
[[nodiscard]] Expected<stats::PowerFit> fit_tail_growth(
    const stats::Series& speedup);

}  // namespace ipso
