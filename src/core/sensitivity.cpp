#include "core/sensitivity.h"

#include "core/contracts.h"
#include "core/model.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ipso {

namespace {

/// Central difference of S(n) along one parameter accessor.
template <typename Set>
double partial(const AsymptoticParams& p, double n, double value,
               double rel_step, Set&& set) {
  const double h = value != 0.0 ? std::abs(value) * rel_step : rel_step;
  AsymptoticParams lo = p, hi = p;
  set(lo, value - h);
  set(hi, value + h);
  // Clamp into valid domains; fall back to one-sided when clamped.
  auto clamp = [](AsymptoticParams& q) {
    q.eta = std::clamp(q.eta, 0.0, 1.0);
    q.alpha = std::max(q.alpha, 1e-12);
    q.beta = std::max(q.beta, 0.0);
    q.gamma = std::max(q.gamma, 0.0);
  };
  clamp(lo);
  clamp(hi);
  const double slo = speedup_asymptotic(lo, n);
  const double shi = speedup_asymptotic(hi, n);
  return (shi - slo) / (2.0 * h);
}

}  // namespace

Sensitivities sensitivities(const AsymptoticParams& p, NodeCount n,
                            double rel_step) {
  // n >= 1 is guaranteed by the NodeCount domain type at the boundary.
  Sensitivities s;
  s.n = n;
  s.d_eta = partial(p, n, p.eta, rel_step,
                    [](AsymptoticParams& q, double v) { q.eta = v; });
  s.d_alpha = partial(p, n, p.alpha, rel_step,
                      [](AsymptoticParams& q, double v) { q.alpha = v; });
  s.d_delta = partial(p, n, p.delta, rel_step,
                      [](AsymptoticParams& q, double v) { q.delta = v; });
  s.d_beta = partial(p, n, p.beta, rel_step,
                     [](AsymptoticParams& q, double v) { q.beta = v; });
  s.d_gamma = partial(p, n, p.gamma, rel_step,
                      [](AsymptoticParams& q, double v) { q.gamma = v; });
  return s;
}

ImprovementGains improvement_gains(const AsymptoticParams& p, NodeCount n,
                                   double improvement) {
  IPSO_EXPECTS(improvement > 0.0 && improvement < 1.0,
               "improvement_gains: improvement in (0,1)");
  const double base = speedup_asymptotic(p, n);
  auto gain = [&](auto&& tweak) {
    AsymptoticParams q = p;
    tweak(q);
    return speedup_asymptotic(q, n) / base - 1.0;
  };
  ImprovementGains g;
  g.n = n;
  g.eta = gain([&](AsymptoticParams& q) {
    q.eta = std::min(1.0, q.eta * (1.0 + improvement));
  });
  g.alpha =
      gain([&](AsymptoticParams& q) { q.alpha *= 1.0 + improvement; });
  g.delta = gain([&](AsymptoticParams& q) {
    q.delta = std::min(1.0, q.delta == 0.0 ? improvement
                                           : q.delta * (1.0 + improvement));
  });
  g.beta = gain([&](AsymptoticParams& q) { q.beta *= 1.0 - improvement; });
  g.gamma =
      gain([&](AsymptoticParams& q) { q.gamma *= 1.0 - improvement; });
  return g;
}

std::string improvement_advice(const AsymptoticParams& p, NodeCount n) {
  const ImprovementGains g = improvement_gains(p, n);
  struct Option {
    const char* what;
    double gain;
  };
  const Option options[] = {
      {"raising the parallel fraction eta", g.eta},
      {"raising the in-proportion coefficient alpha (shrink the merge)",
       g.alpha},
      {"raising delta (decouple the merge from the data growth)", g.delta},
      {"cutting the overhead coefficient beta", g.beta},
      {"cutting the overhead exponent gamma (fix the induced scaling)",
       g.gamma},
  };
  const Option* best = &options[0];
  for (const auto& o : options) {
    if (o.gain > best->gain) best = &o;
  }
  std::ostringstream os;
  os << "at n = " << n << ", the best 10% engineering investment is "
     << best->what << ": +" << static_cast<int>(best->gain * 100.0 + 0.5)
     << "% speedup";
  return os.str();
}

}  // namespace ipso
