#pragma once

#include "core/domain.h"
#include "core/scaling_factors.h"

#include <string>
#include <string_view>

/// \file classify.h
/// IPSO's taxonomy of scaling behaviours (paper Section IV, Figs. 2-3) and a
/// classifier from the asymptotic parameters (η, α, δ, β, γ). The classifier
/// works by dominant-exponent analysis of the asymptotic speedup (Eq. 16):
/// the growth order of S(n) for large n is the difference between the
/// dominant numerator and denominator exponents; ties in the denominator
/// decide the subtype (III,1 vs III,2).

namespace ipso {

/// The growth shape of S(n) for large n.
enum class GrowthShape {
  kLinear,     ///< S(n) ~ c·n (types It / Is)
  kSublinear,  ///< S(n) -> inf slower than n (types IIt / IIs)
  kBounded,    ///< S(n) -> finite bound, monotone (types IIIt / IIIs)
  kPeaked,     ///< S(n) peaks then falls toward 0 (types IVt / IVs)
};

/// The paper's named scaling types.
enum class ScalingType {
  kIt,      ///< Gustafson-like linear (fixed-time)
  kIIt,     ///< sublinear unbounded (fixed-time)
  kIIIt1,   ///< bounded, limit set by in-proportion scaling (γ < 1, δ = 0)
  kIIIt2,   ///< bounded, limit set by linear scale-out scaling (γ = 1)
  kIVt,     ///< pathological peak-and-fall (γ > 1)
  kIs,      ///< S(n) = n (fixed-size, η = 1, q = 0)
  kIIs,     ///< sublinear unbounded (fixed-size, η = 1, γ < 1)
  kIIIs1,   ///< Amdahl-like bounded (γ < 1); Amdahl at γ = 0, α = 1
  kIIIs2,   ///< bounded with scale-out term in the limit (γ = 1)
  kIVs,     ///< pathological peak-and-fall (γ > 1)
};

/// Short name, e.g. "IIIt,1".
std::string_view to_string(ScalingType t) noexcept;

/// Shape of a named type.
GrowthShape shape_of(ScalingType t) noexcept;

/// Full classification result.
struct Classification {
  ScalingType type = ScalingType::kIt;
  GrowthShape shape = GrowthShape::kLinear;
  /// Asymptotic bound of S(n) for bounded types; +inf otherwise.
  double bound = 0.0;
  /// For linear types, the asymptotic slope of S(n) (e.g. η·α for It).
  double slope = 0.0;
  /// For peaked types, the scale-out degree maximizing S(n) and the peak value.
  double peak_n = 0.0;
  double peak_speedup = 0.0;
  /// One-paragraph root-cause explanation in the paper's vocabulary.
  std::string rationale;
};

/// Classifies an asymptotic parameter set. `tol` absorbs fitting noise when
/// comparing exponents against the structural values 0 and 1 (a fitted
/// γ = 0.98 is treated as γ = 1). Precondition (contracts.h): η ∈ [0,1] and
/// α, β, γ nonnegative — the taxonomy is undefined outside those domains.
[[nodiscard]] Classification classify(const AsymptoticParams& p,
                                      double tol = 0.05);

/// Asymptotic bound of S(n) under `p`; +inf for unbounded types.
[[nodiscard]] double asymptotic_bound(const AsymptoticParams& p,
                                      double tol = 0.05);

/// Numerically locates the peak of the asymptotic speedup on [1, n_max]
/// by golden-section search. Returns {argmax n, max S}.
struct Peak {
  double n = 1.0;
  double speedup = 1.0;
};
[[nodiscard]] Peak find_peak(const AsymptoticParams& p,
                             NodeCount n_max = 1e6);

/// Closed-form peak of Eq. 17 (eta = 1, S = n/(1 + beta·n^gamma)), valid
/// for gamma > 1 and beta > 0:
///   n* = (1 / (beta·(gamma-1)))^(1/gamma),   S* = n*·(gamma-1)/gamma.
/// For the CF case (beta = 3.74e-4, gamma = 2) this gives n* ~ 51.7 — the
/// paper's hard scale-out ceiling. The domain types reject β < 0 / γ < 0 at
/// the boundary; the stricter "peak exists" condition γ > 1, β > 0 still
/// throws std::invalid_argument here.
[[nodiscard]] Peak analytic_peak_eta_one(Beta beta, Gamma gamma);

}  // namespace ipso
