#pragma once

#include <stdexcept>
#include <string>

/// \file contracts.h
/// Precondition / postcondition / invariant macros for the IPSO library.
///
/// The model's correctness hinges on parameter-domain invariants the type
/// system historically ignored — δ∈[0,1], γ≥0, α>0, β≥0, η∈[0,1], n≥1,
/// q(1)=0 — and a silently out-of-domain parameter produces a
/// plausible-but-wrong speedup curve rather than an error. These macros make
/// the invariants machine-checked at every public entry point:
///
///   IPSO_EXPECTS(cond, msg)  — caller-facing precondition
///   IPSO_ENSURES(cond, msg)  — callee-facing postcondition
///   IPSO_ASSERT(cond, msg)   — internal invariant
///
/// Violation handling is pluggable (set_violation_handler). The default
/// handler throws ContractViolation, which derives from
/// std::invalid_argument so every pre-existing EXPECT_THROW(...,
/// std::invalid_argument) contract in the test suite keeps holding. Two
/// alternative handlers ship with the library:
///
///   abort_handler — prints the violation with source location to stderr and
///                   aborts; the hard-stop choice for debug/fuzzing builds.
///   log_handler   — prints and *continues* (the check's condition already
///                   evaluated false). Only for code that must never unwind,
///                   e.g. a draining daemon that prefers a wrong answer over
///                   a dead connection. The serve daemon instead keeps the
///                   throwing handler and maps ContractViolation to a
///                   "contract_violation" protocol error at the request
///                   boundary, so a bad request can never take a worker down.
///
/// Configure out with -DIPSO_CONTRACTS=OFF (cmake) / -DIPSO_CONTRACTS_OFF
/// (compiler): every macro compiles to ((void)0) and the domain-type
/// validation in domain.h compiles to a plain copy, so release binaries pay
/// zero overhead (bench_contracts_overhead asserts the enabled-build budget,
/// and the determinism CI leg asserts contracts-OFF bench output stays
/// byte-identical). Conditions must therefore be side-effect free.

#if !defined(IPSO_CONTRACTS_OFF)
#define IPSO_CONTRACTS_ENABLED 1
#else
#define IPSO_CONTRACTS_ENABLED 0
#endif

namespace ipso::contracts {

/// Which macro tripped.
enum class Kind { kPrecondition, kPostcondition, kAssertion };

constexpr const char* to_string(Kind k) noexcept {
  switch (k) {
    case Kind::kPrecondition: return "precondition";
    case Kind::kPostcondition: return "postcondition";
    case Kind::kAssertion: return "assertion";
  }
  return "contract";
}

/// Everything a handler needs to report a violation.
struct Violation {
  Kind kind = Kind::kAssertion;
  const char* condition = "";  ///< stringified condition text
  const char* message = "";    ///< human explanation ("η must be in [0,1]")
  const char* file = "";
  int line = 0;
  const char* function = "";

  /// "precondition violated at core/model.cpp:42 in speedup_deterministic:
  ///  η must be in [0,1] (eta >= 0.0 && eta <= 1.0)"
  std::string to_string() const;
};

/// Thrown by the default handler. Derives from std::invalid_argument: the
/// repo's historical out-of-domain contract was `throw std::invalid_argument`
/// and the test suite pins that type.
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const Violation& v);

  Kind kind() const noexcept { return kind_; }
  const char* file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

 private:
  Kind kind_;
  const char* file_;
  int line_;
};

/// A handler observes the violation; if it returns, execution continues past
/// the failed check (log_handler's contract). Handlers must be reentrant.
using Handler = void (*)(const Violation&);

/// Throws ContractViolation (the default).
void throw_handler(const Violation& v);

/// Writes v.to_string() to stderr and calls std::abort().
[[noreturn]] void abort_handler_impl(const Violation& v);
inline void abort_handler(const Violation& v) { abort_handler_impl(v); }

/// Writes v.to_string() to stderr and returns (execution continues).
void log_handler(const Violation& v);

/// Installs a handler, returning the previous one. Thread-safe (atomic
/// pointer swap); passing nullptr restores the default throw_handler.
Handler set_violation_handler(Handler h) noexcept;

/// The currently installed handler.
Handler violation_handler() noexcept;

/// Routes a violation to the installed handler. Out-of-line so the macro
/// expansion stays a compare + predictable branch at every check site.
void violate(Kind kind, const char* condition, const char* message,
             const char* file, int line, const char* function);

/// Domain-type hook: validates `value` under `ok`, reporting `message` on
/// failure. constexpr so an out-of-domain *literal* — `constexpr Delta
/// d{1.5};` — is ill-formed at compile time (the non-constant violate() call
/// is reached during constant evaluation); runtime values route through the
/// violation handler like every other precondition. Compiles to a plain copy
/// under -DIPSO_CONTRACTS=OFF.
constexpr double checked_domain(double value, [[maybe_unused]] bool ok,
                                [[maybe_unused]] const char* message,
                                [[maybe_unused]] const char* type_name) {
#if IPSO_CONTRACTS_ENABLED
  if (!ok) {
    violate(Kind::kPrecondition, type_name, message, "", 0, type_name);
  }
#endif
  return value;
}

}  // namespace ipso::contracts

#if IPSO_CONTRACTS_ENABLED

#define IPSO_CONTRACT_CHECK_(kind, cond, msg)                              \
  (static_cast<bool>(cond)                                                 \
       ? static_cast<void>(0)                                              \
       : ::ipso::contracts::violate(kind, #cond, msg, __FILE__, __LINE__,  \
                                    static_cast<const char*>(__func__)))

/// Caller-facing precondition: argument domains, required state.
#define IPSO_EXPECTS(cond, msg) \
  IPSO_CONTRACT_CHECK_(::ipso::contracts::Kind::kPrecondition, cond, msg)

/// Callee-facing postcondition: what the function guarantees on return.
#define IPSO_ENSURES(cond, msg) \
  IPSO_CONTRACT_CHECK_(::ipso::contracts::Kind::kPostcondition, cond, msg)

/// Internal invariant that does not belong to the public contract.
#define IPSO_ASSERT(cond, msg) \
  IPSO_CONTRACT_CHECK_(::ipso::contracts::Kind::kAssertion, cond, msg)

#else  // contracts compiled out: conditions are not evaluated.

#define IPSO_EXPECTS(cond, msg) static_cast<void>(0)
#define IPSO_ENSURES(cond, msg) static_cast<void>(0)
#define IPSO_ASSERT(cond, msg) static_cast<void>(0)

#endif  // IPSO_CONTRACTS_ENABLED
