#include "core/model.h"

#include "core/contracts.h"

#include <cmath>

namespace ipso {

double speedup_statistical(const ScalingFactors& f, const StatisticalInputs& m,
                           NodeCount n) {
  const double total1 = m.e_tp1 + m.e_ts1;
  IPSO_EXPECTS(total1 > 0.0, "speedup_statistical: zero baseline time");
  const double eta = m.e_tp1 / total1;
  const double ex = f.ex(n);
  const double in = f.in(n);
  const double num = eta * ex + (1.0 - eta) * in;
  const double den =
      m.e_max_tp / total1 + (1.0 - eta) * in + eta * ex * f.q(n) / n;
  return num / den;
}

double speedup_deterministic(const ScalingFactors& f, Eta eta, NodeCount n) {
  // η ∈ [0,1] and n ≥ 1 are guaranteed by the domain types at the boundary.
  const double ex = f.ex(n);
  const double in = f.in(n);
  const double num = eta * ex + (1.0 - eta) * in;
  const double den = eta * (ex / n) * (1.0 + f.q(n)) + (1.0 - eta) * in;
  return num / den;
}

double speedup_asymptotic(const AsymptoticParams& p, NodeCount n) {
  // q(n) ≈ β n^γ, with γ = 0 meaning q = 0 (paper convention) and q(1) = 0
  // by definition (sequential execution induces no scale-out workload).
  const double q =
      p.has_scale_out() && n > 1.0 ? p.beta * std::pow(n, p.gamma) : 0.0;
  if (p.eta >= 1.0) {
    // Eq. 17: no serial portion.
    return n / (1.0 + q);
  }
  // Fixed-size workloads have delta = 0 by definition (paper Section IV:
  // without external scaling the serial portion cannot scale either).
  const double delta =
      p.type == WorkloadType::kFixedSize ? 0.0 : p.delta;
  const double ead = p.eta * p.alpha * std::pow(n, delta);
  const double num = ead + (1.0 - p.eta);
  const double den = ead / n * (1.0 + q) + (1.0 - p.eta);
  return num / den;
}

double speedup_from_components(const WorkloadComponents& c) noexcept {
  return c.speedup();
}

Eta eta_from_times(double tp1, double ts1) {
  const double total = tp1 + ts1;
  if (total <= 0.0) return 0.0;
  return tp1 / total;  // out-of-domain (negative input) trips Eta's contract
}

stats::Series SpeedupCurve::as_series(std::string name) const {
  stats::Series out(std::move(name));
  for (std::size_t i = 0; i < ns.size(); ++i) out.add(ns[i], speedups[i]);
  return out;
}

SpeedupCurve speedup_curve(const ScalingFactors& f, Eta eta,
                           std::span<const double> ns) {
  SpeedupCurve out;
  out.ns.assign(ns.begin(), ns.end());
  out.speedups.reserve(ns.size());
  for (double n : ns) out.speedups.push_back(speedup_deterministic(f, eta, n));
  return out;
}

SpeedupCurve speedup_curve(const AsymptoticParams& p,
                           std::span<const double> ns) {
  SpeedupCurve out;
  out.ns.assign(ns.begin(), ns.end());
  out.speedups.reserve(ns.size());
  for (double n : ns) out.speedups.push_back(speedup_asymptotic(p, n));
  return out;
}

}  // namespace ipso
