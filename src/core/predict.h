#pragma once

#include "core/fit.h"
#include "core/model.h"

#include <vector>

/// \file predict.h
/// Speedup prediction from small-n fits and the speedup-versus-cost
/// provisioning analysis the paper's conclusion motivates: "as long as the
/// three scaling factors can be accurately estimated at small problem sizes,
/// the speedups at large problem sizes may be predicted with high accuracy."

namespace ipso {

/// Predicts S(n) at arbitrary n from scaling factors fitted at small n.
/// Wraps the deterministic IPSO model (Eq. 10) with the exact fitted factor
/// curves (linear or step-wise IN(n), power-law q(n)), falling back to the
/// asymptotic power laws where no exact fit exists.
class SpeedupPredictor {
 public:
  /// Builds a predictor from factor fits. Uses the segmented IN(n) when a
  /// changepoint was detected, the straight-line fit otherwise, and the
  /// asymptotic power law as the last resort.
  [[nodiscard]] static SpeedupPredictor from_fits(const FactorFits& fits);

  /// Builds a predictor directly from exact scaling factors. The Eta domain
  /// type validates η ∈ [0,1] at the boundary (contracts.h).
  SpeedupPredictor(ScalingFactors factors, Eta eta);

  /// Predicted speedup at scale-out degree n (n >= 1).
  [[nodiscard]] double operator()(NodeCount n) const;

  /// Predicted speedup over a sweep of n values, as a named series.
  [[nodiscard]] stats::Series curve(std::span<const double> ns,
                                    std::string name = "IPSO prediction") const;

  /// The η used by the predictor.
  double eta() const noexcept { return eta_; }

  /// The underlying factors (for inspection / reports).
  const ScalingFactors& factors() const noexcept { return factors_; }

 private:
  ScalingFactors factors_;
  double eta_ = 1.0;
};

/// One provisioning option evaluated at scale-out degree n. Cost is measured
/// in node-time units: n parallel nodes held for the parallel job duration
/// (normalized so the sequential run at n = 1 costs 1).
struct ProvisioningOption {
  double n = 1.0;
  double speedup = 1.0;
  double cost = 1.0;        ///< n · T_par(n) / T_seq(1)
  double efficiency = 1.0;  ///< speedup / n (classic parallel efficiency)
  double value = 1.0;       ///< speedup / cost
};

/// Provisioning sweep result with the paper-motivated selections.
struct ProvisioningPlan {
  std::vector<ProvisioningOption> options;
  double best_speedup_n = 1.0;  ///< n maximizing S(n) within the sweep
  double best_value_n = 1.0;    ///< n maximizing speedup per unit cost
  double knee_n = 1.0;  ///< smallest n reaching `knee_frac` of the max speedup
};

/// Evaluates provisioning options for n in `ns` under a predictor.
/// `knee_frac` (default 0.9) defines the knee point: the cheapest n whose
/// speedup is at least that fraction of the best achievable in the sweep.
[[nodiscard]] ProvisioningPlan plan_provisioning(
    const SpeedupPredictor& predictor, std::span<const double> ns,
    double knee_frac = 0.9);

}  // namespace ipso
