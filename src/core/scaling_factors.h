#pragma once

#include "core/domain.h"
#include "core/workload.h"

#include <functional>

/// \file scaling_factors.h
/// The three scaling factors that fully determine IPSO's behaviour
/// (paper Section III): EX(n) external, IN(n) internal, q(n) scale-out-induced.
/// Two representations are provided — arbitrary callables for exact modeling,
/// and the asymptotic power-law parameterization (Eqs. 14-15) used for
/// classification and prediction.

namespace ipso {

/// Scalar function of the scale-out degree n.
using ScalingFn = std::function<double(double)>;

/// Exact scaling factors. Contract: ex(1) = in(1) = 1 and q(1) = 0.
struct ScalingFactors {
  ScalingFn ex;  ///< EX(n): Wp(n) = Wp(1)·EX(n)   (Eq. 3)
  ScalingFn in;  ///< IN(n): Ws(n) = Ws(1)·IN(n)   (Eq. 4)
  ScalingFn q;   ///< q(n):  Wo(n) = (Wp(n)/n)·q(n) (Eq. 6)

  /// In-proportion scaling ratio ε(n) = EX(n)/IN(n) (Eq. 5).
  double epsilon(double n) const { return ex(n) / in(n); }
};

/// EX(n) per workload type (Eq. 13). `g` is Sun-Ni's memory-bound function
/// and is only used for kMemoryBounded; for data-intensive workloads the
/// paper takes g(n) ≈ n.
ScalingFn make_external(WorkloadType type, ScalingFn g = nullptr);

/// Constant factor f(n) = value.
ScalingFn constant_factor(double value);

/// Identity factor f(n) = n.
ScalingFn identity_factor();

/// Linear factor f(n) = slope·n + intercept. With slope > 0 this is the
/// in-proportion IN(n) the paper measures for Sort and TeraSort (Fig. 6).
ScalingFn linear_factor(double slope, double intercept);

/// Power-law factor f(n) = coeff·n^exponent.
ScalingFn power_factor(double coeff, double exponent);

/// q(n) = beta·n^gamma for n > 1 and exactly 0 at n = 1 (the paper requires
/// q(1) = 0: sequential execution induces no scale-out workload). The domain
/// types validate β ≥ 0 and γ ≥ 0 at the call boundary.
[[nodiscard]] ScalingFn make_q(Beta beta, Gamma gamma);

/// Step-wise linear factor: slope/intercept change at the knot, as observed
/// for TeraSort's IN(n) when the reducer memory overflows (paper Fig. 5).
ScalingFn stepwise_linear_factor(double slope_lo, double intercept_lo,
                                 double knot, double slope_hi,
                                 double intercept_hi);

/// Asymptotic parameterization of a workload's scaling behaviour:
/// ε(n) ≈ alpha·n^delta (Eq. 14), q(n) ≈ beta·n^gamma (Eq. 15), plus eta,
/// the parallelizable fraction at n = 1 (Eq. 9/11). These five numbers plus
/// the workload type span the entire IPSO solution space (Section IV).
struct AsymptoticParams {
  WorkloadType type = WorkloadType::kFixedTime;
  double eta = 1.0;    ///< η ∈ (0, 1]
  double alpha = 1.0;  ///< α > 0, coefficient of ε(n)
  double delta = 1.0;  ///< δ; fixed-time: 0 ≤ δ ≤ 1, fixed-size: δ = 0
  double beta = 0.0;   ///< β ≥ 0, coefficient of q(n)
  double gamma = 0.0;  ///< γ ≥ 0; γ = 0 means q(n) = 0 (paper convention)

  /// Domain-validated construction: each argument converts through its
  /// domain type (domain.h), so an out-of-domain value trips the contract
  /// handler here rather than producing NaN taxonomy downstream.
  [[nodiscard]] static AsymptoticParams make(WorkloadType type, Eta eta,
                                             Alpha alpha, Delta delta,
                                             Beta beta, Gamma gamma) noexcept {
    return AsymptoticParams{type, eta, alpha, delta, beta, gamma};
  }

  /// True when every field lies in its paper domain (δ is ignored for
  /// fixed-size workloads, where it is structurally 0 and the field unused).
  [[nodiscard]] bool in_domain() const noexcept {
    return Eta::valid(eta) && Alpha::valid(alpha) && Beta::valid(beta) &&
           Gamma::valid(gamma) &&
           (type == WorkloadType::kFixedSize || Delta::valid(delta));
  }

  /// True when the model has a scale-out-induced component.
  bool has_scale_out() const noexcept { return gamma > 0.0 && beta > 0.0; }

  /// Materializes exact ScalingFactors consistent with these asymptotics:
  /// fixed-time -> EX = n, IN = n^(1-δ)/α; fixed-size -> EX = 1, IN = 1/α
  /// (IN is normalized so IN(1) = 1 when α = 1).
  [[nodiscard]] ScalingFactors materialize() const;
};

}  // namespace ipso
