#include "workloads/wordcount.h"

namespace ipso::wl {

WordHistogram wordcount_map(const std::string& shard_text) {
  WordHistogram h;
  std::size_t i = 0;
  while (i < shard_text.size()) {
    while (i < shard_text.size() && shard_text[i] == ' ') ++i;
    std::size_t j = i;
    while (j < shard_text.size() && shard_text[j] != ' ') ++j;
    if (j > i) ++h[shard_text.substr(i, j - i)];
    i = j;
  }
  return h;
}

void wordcount_merge(WordHistogram& dst, const WordHistogram& src) {
  for (const auto& [word, count] : src) dst[word] += count;
}

double wordcount_histogram_bytes(const WordHistogram& h) {
  double bytes = 0.0;
  for (const auto& [word, count] : h) {
    bytes += static_cast<double>(word.size()) + 1.0;  // word + tab
    // Decimal digits of the count + newline.
    std::uint64_t c = count;
    double digits = 1.0;
    while (c >= 10) {
      c /= 10;
      digits += 1.0;
    }
    bytes += digits + 1.0;
  }
  return bytes;
}

WordHistogram wordcount_run(const Dictionary& dict, std::uint64_t seed,
                            std::size_t shards, std::size_t shard_bytes) {
  WordHistogram merged;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string text = generate_text(dict, seed + s, shard_bytes);
    const WordHistogram local = wordcount_map(text);
    wordcount_merge(merged, local);
  }
  return merged;
}

std::uint64_t wordcount_total(const WordHistogram& h) {
  std::uint64_t total = 0;
  for (const auto& [_, count] : h) total += count;
  return total;
}

mr::MrWorkloadSpec wordcount_spec() {
  // Calibrate the per-task intermediate volume by really counting a sample
  // shard: a combiner histogram over a 1000-word dictionary is ~constant
  // regardless of the shard size (every shard saturates the dictionary).
  static const double kHistogramBytes = [] {
    const Dictionary dict;
    const std::string sample = generate_text(dict, /*seed=*/7, 1 << 18);
    return wordcount_histogram_bytes(wordcount_map(sample));
  }();

  mr::MrWorkloadSpec spec;
  spec.name = "WordCount";
  // Tokenize + hash + combine: ~8 abstract ops per input byte.
  spec.map_ops_per_byte = 8.0;
  // Combiner output: constant histogram, no per-byte component.
  spec.intermediate_ratio = 0.0;
  spec.fixed_intermediate_bytes = kHistogramBytes;
  spec.merge_ops_per_byte = 1.0;
  // Final result write + job commit: the ~1 s constant that dominates the
  // serial phase and keeps IN(n) ~ 1.
  spec.fixed_reduce_ops = 1e8;
  spec.spill_enabled = false;  // kilobyte-scale intermediate data never spills
  return spec;
}

}  // namespace ipso::wl
