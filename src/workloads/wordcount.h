#pragma once

#include "mapreduce/workload_spec.h"
#include "workloads/textgen.h"

#include <cstdint>
#include <map>
#include <string>

/// \file wordcount.h
/// WordCount: the HiBench micro-benchmark the paper measures in Fig. 4(b).
/// The functional kernel really counts words; each map task emits a
/// combiner-style histogram over the 1000-word dictionary, so the
/// intermediate data per task is (nearly) constant — which is exactly why
/// the paper measures IN(n) ~ 1 for WordCount (no in-proportion scaling).

namespace ipso::wl {

/// Word histogram: the map-side combiner output and the reduce-side state.
using WordHistogram = std::map<std::string, std::uint64_t>;

/// Counts words in one text shard (a real computation).
WordHistogram wordcount_map(const std::string& shard_text);

/// Merges `src` into `dst` (the single reducer's merge stage).
void wordcount_merge(WordHistogram& dst, const WordHistogram& src);

/// Serialized size in bytes of a histogram ("word\tcount\n" per entry) —
/// the measured intermediate-data volume of one map task.
double wordcount_histogram_bytes(const WordHistogram& h);

/// End-to-end functional WordCount over `shards` generated text shards of
/// `shard_bytes` each; returns the merged histogram.
WordHistogram wordcount_run(const Dictionary& dict, std::uint64_t seed,
                            std::size_t shards, std::size_t shard_bytes);

/// Total number of word occurrences in a histogram.
std::uint64_t wordcount_total(const WordHistogram& h);

/// Simulation cost model for WordCount, with the intermediate-data constant
/// calibrated by actually running the kernel on a sample shard.
mr::MrWorkloadSpec wordcount_spec();

}  // namespace ipso::wl
