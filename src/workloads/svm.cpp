#include "workloads/svm.h"

#include <cmath>
#include <stdexcept>

namespace ipso::wl {

namespace {
double label_pm1(int label) { return label > 0 ? 1.0 : -1.0; }
}  // namespace

SvmModel svm_train(const std::vector<LabeledPoint>& data, std::size_t epochs,
                   double learning_rate, double lambda) {
  if (data.empty()) throw std::invalid_argument("svm_train: empty data");
  const std::size_t dims = data.front().features.size();
  SvmModel m;
  m.weights.assign(dims, 0.0);

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    // Decaying step size keeps late epochs from oscillating.
    const double lr = learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
    for (const auto& p : data) {
      if (p.features.size() != dims) {
        throw std::invalid_argument("svm_train: dimension mismatch");
      }
      const double y = label_pm1(p.label);
      const double margin = y * (svm_margin(m, p.features));
      for (std::size_t d = 0; d < dims; ++d) {
        double grad = lambda * m.weights[d];
        if (margin < 1.0) grad -= y * p.features[d];
        m.weights[d] -= lr * grad;
      }
      if (margin < 1.0) m.bias += lr * y;
    }
  }
  return m;
}

double svm_margin(const SvmModel& m, const std::vector<double>& x) {
  if (x.size() != m.weights.size()) {
    throw std::invalid_argument("svm_margin: dimension mismatch");
  }
  double dot = m.bias;
  for (std::size_t d = 0; d < x.size(); ++d) dot += m.weights[d] * x[d];
  return dot;
}

int svm_predict(const SvmModel& m, const std::vector<double>& x) {
  return svm_margin(m, x) >= 0.0 ? 1 : 0;
}

double svm_accuracy(const SvmModel& m, const std::vector<LabeledPoint>& data) {
  if (data.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& p : data) {
    if (svm_predict(m, p.features) == (p.label > 0 ? 1 : 0)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

double svm_objective(const SvmModel& m, const std::vector<LabeledPoint>& data,
                     double lambda) {
  double loss = 0.0;
  for (const auto& p : data) {
    const double y = label_pm1(p.label);
    loss += std::max(0.0, 1.0 - y * svm_margin(m, p.features));
  }
  loss /= static_cast<double>(data.empty() ? 1 : data.size());
  double reg = 0.0;
  for (double w : m.weights) reg += w * w;
  return loss + 0.5 * lambda * reg;
}

spark::SparkAppSpec svm_app() {
  spark::SparkAppSpec app;
  app.name = "SVM";
  app.iterations = 5;  // five SGD epochs

  // Per-epoch gradient pass over cached partitions, weights broadcast first.
  spark::StageSpec gradient;
  gradient.name = "gradientPass";
  gradient.task_ops = 1.5e8;
  gradient.cached_bytes_per_task = 1.5e9;
  gradient.broadcast_bytes = 8e5;          // weight vector to every executor
  gradient.shuffle_bytes_per_task = 1e5;   // partial gradients

  // Driver-side weight update (cheap, few tasks).
  spark::StageSpec update;
  update.name = "updateWeights";
  update.task_ops = 2e7;
  update.task_count_factor = 0.05;

  app.stages = {gradient, update};
  app.driver_ops_per_job = 2e7;
  return app;
}

}  // namespace ipso::wl
