#include "workloads/random_forest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ipso::wl {

namespace {

/// Majority class of an index subset.
int majority(const std::vector<LabeledPoint>& data,
             const std::vector<std::size_t>& idx, std::size_t classes) {
  std::vector<std::size_t> counts(classes, 0);
  for (auto i : idx) ++counts[static_cast<std::size_t>(data[i].label)];
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

/// Gini impurity of an index subset.
double gini(const std::vector<LabeledPoint>& data,
            const std::vector<std::size_t>& idx, std::size_t classes) {
  if (idx.empty()) return 0.0;
  std::vector<double> counts(classes, 0.0);
  for (auto i : idx) counts[static_cast<std::size_t>(data[i].label)] += 1.0;
  double g = 1.0;
  for (double c : counts) {
    const double p = c / static_cast<double>(idx.size());
    g -= p * p;
  }
  return g;
}

struct Split {
  std::size_t feature = 0;
  double threshold = 0.0;
  double impurity = 1e300;
  bool valid = false;
};

/// Best split over a random subset of sqrt(dims) features, thresholds from
/// sampled midpoints.
Split best_split(const std::vector<LabeledPoint>& data,
                 const std::vector<std::size_t>& idx, std::size_t classes,
                 stats::Rng& rng) {
  Split best;
  const std::size_t dims = data.front().features.size();
  const auto features_to_try = static_cast<std::size_t>(
      std::max(1.0, std::sqrt(static_cast<double>(dims))));
  for (std::size_t f = 0; f < features_to_try; ++f) {
    const std::size_t feature = rng.uniform_below(dims);
    // Candidate thresholds: a handful of sample values.
    for (int c = 0; c < 8; ++c) {
      const std::size_t pick = idx[rng.uniform_below(idx.size())];
      const double threshold = data[pick].features[feature];
      std::vector<std::size_t> left, right;
      for (auto i : idx) {
        (data[i].features[feature] <= threshold ? left : right).push_back(i);
      }
      if (left.empty() || right.empty()) continue;
      const double wl = static_cast<double>(left.size());
      const double wr = static_cast<double>(right.size());
      const double impurity = (wl * gini(data, left, classes) +
                               wr * gini(data, right, classes)) /
                              (wl + wr);
      if (impurity < best.impurity) {
        best = {feature, threshold, impurity, true};
      }
    }
  }
  return best;
}

int build_node(DecisionTree& tree, const std::vector<LabeledPoint>& data,
               std::vector<std::size_t> idx, std::size_t classes,
               std::size_t depth, std::size_t max_depth, stats::Rng& rng) {
  const int me = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  tree.nodes[me].label = majority(data, idx, classes);

  if (depth >= max_depth || idx.size() < 4 ||
      gini(data, idx, classes) < 1e-12) {
    return me;
  }
  const Split split = best_split(data, idx, classes, rng);
  if (!split.valid) return me;

  std::vector<std::size_t> left, right;
  for (auto i : idx) {
    (data[i].features[split.feature] <= split.threshold ? left : right)
        .push_back(i);
  }
  if (left.empty() || right.empty()) return me;

  tree.nodes[me].leaf = false;
  tree.nodes[me].feature = split.feature;
  tree.nodes[me].threshold = split.threshold;
  const int l =
      build_node(tree, data, std::move(left), classes, depth + 1, max_depth,
                 rng);
  tree.nodes[me].left = l;
  const int r =
      build_node(tree, data, std::move(right), classes, depth + 1, max_depth,
                 rng);
  tree.nodes[me].right = r;
  return me;
}

}  // namespace

int DecisionTree::predict(const std::vector<double>& x) const {
  if (nodes.empty()) return 0;
  int cur = 0;
  while (!nodes[static_cast<std::size_t>(cur)].leaf) {
    const TreeNode& node = nodes[static_cast<std::size_t>(cur)];
    const int next = x[node.feature] <= node.threshold ? node.left : node.right;
    if (next < 0) break;
    cur = next;
  }
  return nodes[static_cast<std::size_t>(cur)].label;
}

DecisionTree tree_train(const std::vector<LabeledPoint>& data,
                        std::size_t classes, std::size_t max_depth,
                        stats::Rng& rng) {
  if (data.empty()) throw std::invalid_argument("tree_train: empty data");
  std::vector<std::size_t> idx(data.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  DecisionTree tree;
  build_node(tree, data, std::move(idx), classes, 0, max_depth, rng);
  return tree;
}

int Forest::predict(const std::vector<double>& x) const {
  std::vector<std::size_t> votes(classes, 0);
  for (const auto& t : trees) {
    const int label = t.predict(x);
    if (label >= 0 && static_cast<std::size_t>(label) < classes) {
      ++votes[static_cast<std::size_t>(label)];
    }
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

Forest forest_train(const std::vector<LabeledPoint>& data,
                    std::size_t classes, std::size_t trees,
                    std::size_t max_depth, std::uint64_t seed) {
  if (data.empty()) throw std::invalid_argument("forest_train: empty data");
  stats::Rng rng(seed);
  Forest forest;
  forest.classes = classes;
  forest.trees.reserve(trees);
  for (std::size_t t = 0; t < trees; ++t) {
    // Bootstrap resample.
    std::vector<LabeledPoint> sample;
    sample.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      sample.push_back(data[rng.uniform_below(data.size())]);
    }
    forest.trees.push_back(tree_train(sample, classes, max_depth, rng));
  }
  return forest;
}

double forest_accuracy(const Forest& forest,
                       const std::vector<LabeledPoint>& data) {
  if (data.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& p : data) {
    if (forest.predict(p.features) == p.label) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

spark::SparkAppSpec random_forest_app() {
  spark::SparkAppSpec app;
  app.name = "RandomForest";
  app.iterations = 1;

  // Tree construction over bootstrap partitions (heaviest stage).
  spark::StageSpec grow;
  grow.name = "growTrees";
  grow.task_ops = 3e8;
  grow.cached_bytes_per_task = 1.5e9;
  grow.shuffle_bytes_per_task = 3e5;  // serialized trees
  grow.broadcast_bytes = 1e6;         // sampling plan / feature metadata

  // Forest aggregation.
  spark::StageSpec aggregate;
  aggregate.name = "aggregateForest";
  aggregate.task_ops = 5e7;
  aggregate.task_count_factor = 0.1;

  app.stages = {grow, aggregate};
  app.driver_ops_per_job = 3e7;
  return app;
}

}  // namespace ipso::wl
