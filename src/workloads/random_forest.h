#pragma once

#include "spark/stage.h"
#include "workloads/datagen.h"

#include <cstdint>
#include <vector>

/// \file random_forest.h
/// Random Forest — one of the paper's four Spark benchmarks. Functional
/// kernel: bagged axis-aligned decision trees (recursive greedy splits on
/// Gini impurity, random feature subsets), majority-vote prediction. The
/// Spark DAG maps tree construction over bootstrap partitions and
/// aggregates the forest.

namespace ipso::wl {

/// A binary decision-tree node stored in a flat vector.
struct TreeNode {
  bool leaf = true;
  int label = 0;           ///< majority class at a leaf
  std::size_t feature = 0; ///< split feature (internal nodes)
  double threshold = 0.0;  ///< go left when x[feature] <= threshold
  int left = -1;           ///< child indices (-1 for none)
  int right = -1;
};

/// One decision tree.
struct DecisionTree {
  std::vector<TreeNode> nodes;  ///< nodes[0] is the root

  /// Predicted class for one sample.
  int predict(const std::vector<double>& x) const;
};

/// Trains one tree on `data` with depth limit and random feature subsets.
DecisionTree tree_train(const std::vector<LabeledPoint>& data,
                        std::size_t classes, std::size_t max_depth,
                        stats::Rng& rng);

/// A forest of trees.
struct Forest {
  std::vector<DecisionTree> trees;
  std::size_t classes = 0;

  /// Majority vote over trees.
  int predict(const std::vector<double>& x) const;
};

/// Trains `trees` trees on bootstrap resamples of the data.
Forest forest_train(const std::vector<LabeledPoint>& data,
                    std::size_t classes, std::size_t trees,
                    std::size_t max_depth, std::uint64_t seed);

/// Classification accuracy of the forest.
double forest_accuracy(const Forest& forest,
                       const std::vector<LabeledPoint>& data);

/// Spark DAG for the simulated Random Forest job.
spark::SparkAppSpec random_forest_app();

}  // namespace ipso::wl
