#include "workloads/nweight.h"

#include <stdexcept>

namespace ipso::wl {

Adjacency::Adjacency(std::size_t nodes, const std::vector<Edge>& edges) {
  offsets_.assign(nodes + 1, 0);
  for (const auto& e : edges) {
    if (e.src >= nodes || e.dst >= nodes) {
      throw std::invalid_argument("Adjacency: edge endpoint out of range");
    }
    ++offsets_[e.src + 1];
  }
  for (std::size_t v = 0; v < nodes; ++v) offsets_[v + 1] += offsets_[v];
  dsts_.resize(edges.size());
  weights_.resize(edges.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& e : edges) {
    const std::size_t slot = cursor[e.src]++;
    dsts_[slot] = e.dst;
    weights_[slot] = e.weight;
  }
}

std::vector<double> nweight_from(const Adjacency& adj, std::size_t src,
                                 std::size_t hops) {
  if (src >= adj.nodes()) {
    throw std::invalid_argument("nweight_from: source out of range");
  }
  std::vector<double> frontier(adj.nodes(), 0.0);
  std::vector<double> total(adj.nodes(), 0.0);
  frontier[src] = 1.0;
  for (std::size_t h = 0; h < hops; ++h) {
    std::vector<double> next(adj.nodes(), 0.0);
    for (std::size_t v = 0; v < adj.nodes(); ++v) {
      if (frontier[v] == 0.0) continue;
      const auto [lo, hi] = adj.out_range(v);
      for (std::size_t i = lo; i < hi; ++i) {
        next[adj.dst(i)] += frontier[v] * adj.weight(i);
      }
    }
    for (std::size_t v = 0; v < adj.nodes(); ++v) total[v] += next[v];
    frontier = std::move(next);
  }
  total[src] = 0.0;  // paths back to the source are not "neighbors"
  return total;
}

std::vector<double> nweight_all(const Adjacency& adj, std::size_t hops) {
  std::vector<double> out(adj.nodes(), 0.0);
  for (std::size_t v = 0; v < adj.nodes(); ++v) {
    const auto w = nweight_from(adj, v, hops);
    double mass = 0.0;
    for (double x : w) mass += x;
    out[v] = mass;
  }
  return out;
}

spark::SparkAppSpec nweight_app(std::size_t hops) {
  if (hops == 0) throw std::invalid_argument("nweight_app: hops must be >= 1");
  spark::SparkAppSpec app;
  app.name = "NWeight";
  app.iterations = hops;  // one propagation super-step per hop

  spark::StageSpec propagate;
  propagate.name = "propagate";
  propagate.task_ops = 2.5e8;
  propagate.cached_bytes_per_task = 1.5e9;   // cached adjacency partitions
  propagate.shuffle_bytes_per_task = 5e5;    // edge messages dominate
  propagate.broadcast_bytes = 2e5;           // frontier metadata

  app.stages = {propagate};
  app.driver_ops_per_job = 2e7;
  return app;
}

}  // namespace ipso::wl
