#pragma once

#include "mapreduce/workload_spec.h"

#include <cstdint>
#include <cstddef>

/// \file qmc_pi.h
/// QMC Pi (paper Fig. 4(a)): the Apache Hadoop QuasiMonteCarlo example.
/// Each map task evaluates a slice of a low-discrepancy (Halton) sequence
/// and counts points inside the quarter unit circle; the reducer sums two
/// integers per task. There is essentially no serial workload (eta ~ 1) and
/// no in-proportion scaling, which is why this is the one case that matches
/// Gustafson's law (type It).

namespace ipso::wl {

/// Element `index` of the van der Corput sequence in the given base.
double van_der_corput(std::uint64_t index, std::uint32_t base) noexcept;

/// Hit/miss tally of one map task.
struct QmcTally {
  std::uint64_t inside = 0;
  std::uint64_t outside = 0;
};

/// Evaluates `samples` Halton points (bases 2 and 3) starting at `offset`
/// and tallies quarter-circle membership. This is the real Hadoop kernel.
QmcTally qmc_map(std::uint64_t offset, std::uint64_t samples) noexcept;

/// Reducer: combines tallies and estimates pi = 4 * inside / total.
double qmc_estimate(const QmcTally* tallies, std::size_t count) noexcept;

/// End-to-end estimate over `tasks` map tasks of `samples_per_task` points.
double qmc_pi_run(std::size_t tasks, std::uint64_t samples_per_task);

/// Simulation cost model: one "input byte" represents one Halton sample's
/// work footprint; intermediate data is 16 bytes per task; the merge is a
/// constant-time sum.
mr::MrWorkloadSpec qmc_pi_spec();

}  // namespace ipso::wl
