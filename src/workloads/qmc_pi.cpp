#include "workloads/qmc_pi.h"

#include <vector>

namespace ipso::wl {

double van_der_corput(std::uint64_t index, std::uint32_t base) noexcept {
  double result = 0.0;
  double denom = 1.0;
  while (index > 0) {
    denom *= base;
    result += static_cast<double>(index % base) / denom;
    index /= base;
  }
  return result;
}

QmcTally qmc_map(std::uint64_t offset, std::uint64_t samples) noexcept {
  QmcTally t;
  for (std::uint64_t i = 0; i < samples; ++i) {
    // Halton point (base-2, base-3), shifted to the cell centre like the
    // Hadoop example does (index + 1 avoids the origin).
    const double x = van_der_corput(offset + i + 1, 2) - 0.5;
    const double y = van_der_corput(offset + i + 1, 3) - 0.5;
    if (x * x + y * y <= 0.25) {
      ++t.inside;
    } else {
      ++t.outside;
    }
  }
  return t;
}

double qmc_estimate(const QmcTally* tallies, std::size_t count) noexcept {
  std::uint64_t inside = 0, total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    inside += tallies[i].inside;
    total += tallies[i].inside + tallies[i].outside;
  }
  if (total == 0) return 0.0;
  return 4.0 * static_cast<double>(inside) / static_cast<double>(total);
}

double qmc_pi_run(std::size_t tasks, std::uint64_t samples_per_task) {
  std::vector<QmcTally> tallies(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    tallies[t] = qmc_map(static_cast<std::uint64_t>(t) * samples_per_task,
                         samples_per_task);
  }
  return qmc_estimate(tallies.data(), tallies.size());
}

mr::MrWorkloadSpec qmc_pi_spec() {
  mr::MrWorkloadSpec spec;
  spec.name = "QMC";
  // ~10 ops per sample-byte keeps task times in the paper's regime
  // (a 128 MB-equivalent slice runs ~12.8 s on the default cluster).
  spec.map_ops_per_byte = 10.0;
  spec.intermediate_ratio = 0.0;
  spec.fixed_intermediate_bytes = 16.0;  // two 8-byte counters per task
  spec.merge_ops_per_byte = 1.0;
  spec.fixed_reduce_ops = 1e6;  // summing + writing one number: ~10 ms
  spec.spill_enabled = false;
  return spec;
}

}  // namespace ipso::wl
