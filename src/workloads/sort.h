#pragma once

#include "mapreduce/workload_spec.h"
#include "workloads/textgen.h"

#include <cstdint>
#include <string>
#include <vector>

/// \file sort.h
/// Sort: HiBench's text sort (paper Fig. 4(c)). Every input byte flows to
/// the single reducer (intermediate ratio ~1), so the merge workload grows
/// linearly with the total data — the in-proportion scaling that gives Sort
/// its IIIt,1 bounded speedup (measured IN(n) = 0.36·n - 0.11 in the paper).
/// The functional kernel is a real external-sort: map tasks sort their
/// shards into runs, the reducer k-way merges the runs.

namespace ipso::wl {

/// One map task: tokenizes the shard and sorts the words (a sorted run).
std::vector<std::string> sort_map(const std::string& shard_text);

/// Reducer: k-way merge of sorted runs into one sorted sequence.
std::vector<std::string> sort_merge(
    const std::vector<std::vector<std::string>>& runs);

/// End-to-end functional Sort over generated text shards.
std::vector<std::string> sort_run(const Dictionary& dict, std::uint64_t seed,
                                  std::size_t shards, std::size_t shard_bytes);

/// True when `words` is in non-decreasing order.
bool is_sorted_output(const std::vector<std::string>& words);

/// Simulation cost model for Sort, calibrated so IN(n) has slope ~0.36
/// (paper Fig. 6). See DESIGN.md for the derivation of the constants.
mr::MrWorkloadSpec sort_spec();

}  // namespace ipso::wl
