#include "workloads/sort.h"

#include <algorithm>
#include <queue>

namespace ipso::wl {

std::vector<std::string> sort_map(const std::string& shard_text) {
  std::vector<std::string> words = tokenize(shard_text);
  std::sort(words.begin(), words.end());
  return words;
}

std::vector<std::string> sort_merge(
    const std::vector<std::vector<std::string>>& runs) {
  // Heap-based k-way merge, as a real external-sort reducer would do.
  struct Cursor {
    const std::vector<std::string>* run;
    std::size_t pos;
  };
  auto greater = [](const Cursor& a, const Cursor& b) {
    return (*a.run)[a.pos] > (*b.run)[b.pos];
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);
  std::size_t total = 0;
  for (const auto& run : runs) {
    total += run.size();
    if (!run.empty()) heap.push({&run, 0});
  }
  std::vector<std::string> out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out.push_back((*c.run)[c.pos]);
    if (++c.pos < c.run->size()) heap.push(c);
  }
  return out;
}

std::vector<std::string> sort_run(const Dictionary& dict, std::uint64_t seed,
                                  std::size_t shards,
                                  std::size_t shard_bytes) {
  std::vector<std::vector<std::string>> runs;
  runs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    runs.push_back(sort_map(generate_text(dict, seed + s, shard_bytes)));
  }
  return sort_merge(runs);
}

bool is_sorted_output(const std::vector<std::string>& words) {
  return std::is_sorted(words.begin(), words.end());
}

mr::MrWorkloadSpec sort_spec() {
  mr::MrWorkloadSpec spec;
  spec.name = "Sort";
  // Tokenize + local sort of a 128 MB text shard: ~19.1 ops/byte, giving
  // tp(1) ~ 24.5 s and eta ~ 0.59, which reproduces the paper's bounded
  // speedup of ~5 (bound = (eta*alpha + 1-eta)/(1-eta) with alpha = 1/0.36).
  spec.map_ops_per_byte = 19.1;
  // Sort forwards all data: the in-proportion driver.
  spec.intermediate_ratio = 1.0;
  spec.merge_ops_per_byte = 3.0;
  // Output commit / DFS write constant sized so the IN(n) slope —
  // (ingest + merge time per 128 MB shard) / Ws(1) — is 0.36 (paper Fig. 6):
  // per-shard serial increment = 128e6/56.25e6 + 3.0*128e6/1e8 = 6.12 s,
  // so Ws(1) = 6.12/0.36 = 17.0 s and the constant is 10.87 s ~ 1.087e9 ops.
  spec.fixed_reduce_ops = 1.087e9;
  // The paper observed a memory-overflow step only for TeraSort; Sort's
  // text intermediate streams through merge without spilling.
  spec.spill_enabled = false;
  return spec;
}

}  // namespace ipso::wl
