#pragma once

#include "spark/stage.h"
#include "workloads/datagen.h"

#include <cstdint>
#include <vector>

/// \file collab_filter.h
/// Collaborative Filtering — the paper's fixed-size case study (Table I,
/// Fig. 8, data from Orchestra [12]). An iterative matrix-factorization job:
/// "in each iteration, there are two feature vectors to be updated
/// alternately, involving two rounds of broadcast and two Map phases with
/// barrier synchronization", no reduce phase (Ws = 0, eta = 1). Each
/// broadcast is driver-serialized, so its cost grows linearly with n —
/// Wo ∝ n, q(n) ∝ n², the type-IVs pathology.

namespace ipso::wl {

/// Model state: user and item factor matrices (row-major, rank columns).
struct CfModel {
  std::size_t users = 0;
  std::size_t items = 0;
  std::size_t rank = 0;
  std::vector<double> u;  ///< users x rank
  std::vector<double> v;  ///< items x rank
};

/// Initializes factors with small random values.
CfModel cf_init(std::uint64_t seed, std::size_t users, std::size_t items,
                std::size_t rank);

/// One alternating iteration: gradient step on U with V fixed ("broadcast
/// V, map over users"), then on V with U fixed. Returns the RMSE *before*
/// the update, so callers can watch it decrease.
double cf_iterate(CfModel& model, const std::vector<Rating>& ratings,
                  double learning_rate = 0.02, double regularization = 0.05);

/// Root-mean-square prediction error of the model on the ratings.
double cf_rmse(const CfModel& model, const std::vector<Rating>& ratings);

/// Runs `iterations` alternating updates; returns the final RMSE.
double cf_train(CfModel& model, const std::vector<Rating>& ratings,
                std::size_t iterations);

/// Spark DAG for the simulated CF job, calibrated against the paper's
/// Table I: total parallel compute ~2000 s split across N tasks, ~9 s of
/// per-stage floor, and per-iteration broadcasts whose driver-side
/// serialization makes Wo(n) ~ 0.6·n s (gamma = 2, peak near n = 60).
spark::SparkAppSpec collab_filter_app(std::size_t total_tasks);

}  // namespace ipso::wl
