#include "workloads/collab_filter.h"

#include <cmath>
#include <stdexcept>

namespace ipso::wl {

CfModel cf_init(std::uint64_t seed, std::size_t users, std::size_t items,
                std::size_t rank) {
  if (rank == 0) throw std::invalid_argument("cf_init: rank must be >= 1");
  stats::Rng rng(seed);
  CfModel m;
  m.users = users;
  m.items = items;
  m.rank = rank;
  m.u.resize(users * rank);
  m.v.resize(items * rank);
  for (auto& x : m.u) x = rng.normal(0.0, 0.1);
  for (auto& x : m.v) x = rng.normal(0.0, 0.1);
  return m;
}

namespace {

double predict(const CfModel& m, std::uint32_t user, std::uint32_t item) {
  double dot = 0.0;
  for (std::size_t k = 0; k < m.rank; ++k) {
    dot += m.u[user * m.rank + k] * m.v[item * m.rank + k];
  }
  return dot;
}

/// One half-iteration: gradient step on `target` factors with the other
/// side fixed — the "map over one side with the other side broadcast".
void half_step(CfModel& m, const std::vector<Rating>& ratings,
               bool update_users, double lr, double reg) {
  for (const auto& r : ratings) {
    const double err = r.value - predict(m, r.user, r.item);
    for (std::size_t k = 0; k < m.rank; ++k) {
      double& uk = m.u[r.user * m.rank + k];
      double& vk = m.v[r.item * m.rank + k];
      if (update_users) {
        uk += lr * (err * vk - reg * uk);
      } else {
        vk += lr * (err * uk - reg * vk);
      }
    }
  }
}

}  // namespace

double cf_rmse(const CfModel& m, const std::vector<Rating>& ratings) {
  if (ratings.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : ratings) {
    const double err = r.value - predict(m, r.user, r.item);
    acc += err * err;
  }
  return std::sqrt(acc / static_cast<double>(ratings.size()));
}

double cf_iterate(CfModel& model, const std::vector<Rating>& ratings,
                  double learning_rate, double regularization) {
  const double before = cf_rmse(model, ratings);
  half_step(model, ratings, /*update_users=*/true, learning_rate,
            regularization);
  half_step(model, ratings, /*update_users=*/false, learning_rate,
            regularization);
  return before;
}

double cf_train(CfModel& model, const std::vector<Rating>& ratings,
                std::size_t iterations) {
  for (std::size_t i = 0; i < iterations; ++i) {
    cf_iterate(model, ratings);
  }
  return cf_rmse(model, ratings);
}

spark::SparkAppSpec collab_filter_app(std::size_t total_tasks) {
  if (total_tasks == 0) {
    throw std::invalid_argument("collab_filter_app: need >= 1 task");
  }
  spark::SparkAppSpec app;
  app.name = "CollaborativeFiltering";
  app.iterations = 10;  // 10 alternating iterations = 20 map stages
  app.driver_ops_per_job = 0.0;  // no reduce phase: Ws = 0, eta = 1

  // Total parallel compute across the whole job ~2000 s (paper Table I
  // extrapolates E[Tp,1(1)] ~ 1602.5 s of map work plus per-stage floors),
  // split evenly over 20 stages x N tasks.
  const double ops_per_stage = 1e10;  // 100 s of work per stage
  const double task_ops = ops_per_stage / static_cast<double>(total_tasks);

  // Each broadcast copy is ~1.7 MB of feature vectors: at the 56.25 MB/s
  // driver uplink one copy costs 0.03 s, so 20 broadcasts cost 0.6·n s of
  // driver serialization — the paper's measured Wo(n) (Table I).
  const double broadcast_bytes = 1.6875e6;

  spark::StageSpec update_users;
  update_users.name = "updateUserFactors";
  update_users.task_ops = task_ops;
  update_users.broadcast_bytes = broadcast_bytes;

  spark::StageSpec update_items = update_users;
  update_items.name = "updateItemFactors";

  app.stages = {update_users, update_items};
  return app;
}

}  // namespace ipso::wl
