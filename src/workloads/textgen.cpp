#include "workloads/textgen.h"

#include <cmath>

namespace ipso::wl {

Dictionary::Dictionary() {
  // Deterministic pseudo-words: pronounceable consonant-vowel patterns with
  // lengths 3..12, seeded independently of any experiment RNG.
  static constexpr char kConsonants[] = "bcdfghjklmnprstvwz";
  static constexpr char kVowels[] = "aeiou";
  stats::Rng rng(0xd1c7100a7e57ULL);
  words_.reserve(1000);
  while (words_.size() < 1000) {
    const std::size_t len =
        3 + static_cast<std::size_t>(rng.uniform_below(10));
    std::string w;
    w.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      if (i % 2 == 0) {
        w.push_back(kConsonants[rng.uniform_below(sizeof(kConsonants) - 1)]);
      } else {
        w.push_back(kVowels[rng.uniform_below(sizeof(kVowels) - 1)]);
      }
    }
    // Keep duplicates out so the dictionary has exactly 1000 distinct words.
    bool dup = false;
    for (const auto& existing : words_) {
      if (existing == w) {
        dup = true;
        break;
      }
    }
    if (!dup) words_.push_back(std::move(w));
  }
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(stats::Rng& rng) const noexcept {
  const double u = rng.uniform();
  // Binary search the CDF.
  std::size_t lo = 0, hi = cdf_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

std::string generate_text(const Dictionary& dict, std::uint64_t seed,
                          std::size_t bytes) {
  stats::Rng rng(seed);
  const ZipfSampler zipf(dict.size());
  std::string out;
  out.reserve(bytes + 16);
  while (out.size() < bytes) {
    const std::string& w = dict.word(zipf.sample(rng));
    out += w;
    out.push_back(' ');
  }
  return out;
}

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ') ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace ipso::wl
