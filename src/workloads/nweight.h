#pragma once

#include "spark/stage.h"
#include "workloads/datagen.h"

#include <cstdint>
#include <vector>

/// \file nweight.h
/// NWeight — the paper's graph Spark benchmark. Computes, for every vertex,
/// the aggregated weight of paths to vertices within `hops` hops (HiBench's
/// NWeight computes n-hop neighbor weights by iterative sparse
/// vector-matrix products). Functional kernel: iterative weighted
/// propagation over an adjacency list. The Spark DAG is iterative with a
/// shuffle per hop (edge messages).

namespace ipso::wl {

/// Compressed adjacency built from an edge list.
class Adjacency {
 public:
  /// Builds adjacency for `nodes` vertices from directed edges.
  Adjacency(std::size_t nodes, const std::vector<Edge>& edges);

  /// Number of vertices.
  std::size_t nodes() const noexcept { return offsets_.size() - 1; }

  /// Out-neighbors (dst, weight) of `v` as index range into the edge arrays.
  std::pair<std::size_t, std::size_t> out_range(std::size_t v) const {
    return {offsets_[v], offsets_[v + 1]};
  }

  std::uint32_t dst(std::size_t i) const { return dsts_[i]; }
  double weight(std::size_t i) const { return weights_[i]; }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> dsts_;
  std::vector<double> weights_;
};

/// n-hop weights from a source: result[v] = sum over all paths of length
/// <= hops from src to v of the product of edge weights along the path.
std::vector<double> nweight_from(const Adjacency& adj, std::size_t src,
                                 std::size_t hops);

/// Aggregate n-hop weight per vertex: total outgoing n-hop weight mass
/// (sum of nweight_from(v)), computed for every vertex. The real kernel the
/// simulated job's map tasks perform.
std::vector<double> nweight_all(const Adjacency& adj, std::size_t hops);

/// Spark DAG for the simulated NWeight job (one stage per hop, heavy
/// shuffle: edge messages dominate).
spark::SparkAppSpec nweight_app(std::size_t hops = 3);

}  // namespace ipso::wl
