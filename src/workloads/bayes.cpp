#include "workloads/bayes.h"

#include <cmath>
#include <stdexcept>

namespace ipso::wl {

namespace {
constexpr double kVarianceFloor = 1e-6;
}

BayesModel bayes_train(const std::vector<LabeledPoint>& data,
                       std::size_t classes) {
  if (data.empty()) throw std::invalid_argument("bayes_train: empty data");
  const std::size_t dims = data.front().features.size();
  BayesModel m;
  m.classes = classes;
  m.dims = dims;
  m.prior.assign(classes, 0.0);
  m.mean.assign(classes * dims, 0.0);
  m.variance.assign(classes * dims, 0.0);

  std::vector<double> count(classes, 0.0);
  for (const auto& p : data) {
    const auto c = static_cast<std::size_t>(p.label);
    if (c >= classes || p.features.size() != dims) {
      throw std::invalid_argument("bayes_train: inconsistent sample");
    }
    count[c] += 1.0;
    for (std::size_t d = 0; d < dims; ++d) {
      m.mean[c * dims + d] += p.features[d];
    }
  }
  for (std::size_t c = 0; c < classes; ++c) {
    if (count[c] > 0.0) {
      for (std::size_t d = 0; d < dims; ++d) m.mean[c * dims + d] /= count[c];
    }
    m.prior[c] = count[c] / static_cast<double>(data.size());
  }
  for (const auto& p : data) {
    const auto c = static_cast<std::size_t>(p.label);
    for (std::size_t d = 0; d < dims; ++d) {
      const double diff = p.features[d] - m.mean[c * dims + d];
      m.variance[c * dims + d] += diff * diff;
    }
  }
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t d = 0; d < dims; ++d) {
      double& v = m.variance[c * dims + d];
      v = count[c] > 1.0 ? v / count[c] : 1.0;
      if (v < kVarianceFloor) v = kVarianceFloor;
    }
  }
  return m;
}

int bayes_predict(const BayesModel& m, const std::vector<double>& x) {
  if (x.size() != m.dims) {
    throw std::invalid_argument("bayes_predict: dimension mismatch");
  }
  double best = -1e300;
  int best_class = 0;
  for (std::size_t c = 0; c < m.classes; ++c) {
    if (m.prior[c] <= 0.0) continue;
    double ll = std::log(m.prior[c]);
    for (std::size_t d = 0; d < m.dims; ++d) {
      const double var = m.variance[c * m.dims + d];
      const double diff = x[d] - m.mean[c * m.dims + d];
      ll += -0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
    }
    if (ll > best) {
      best = ll;
      best_class = static_cast<int>(c);
    }
  }
  return best_class;
}

double bayes_accuracy(const BayesModel& m,
                      const std::vector<LabeledPoint>& data) {
  if (data.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& p : data) {
    if (bayes_predict(m, p.features) == p.label) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

BayesModel bayes_merge(const BayesModel& a, std::size_t count_a,
                       const BayesModel& b, std::size_t count_b) {
  if (a.classes != b.classes || a.dims != b.dims) {
    throw std::invalid_argument("bayes_merge: shape mismatch");
  }
  const double na = static_cast<double>(count_a);
  const double nb = static_cast<double>(count_b);
  const double total = na + nb;
  if (total <= 0.0) throw std::invalid_argument("bayes_merge: empty inputs");

  BayesModel m;
  m.classes = a.classes;
  m.dims = a.dims;
  m.prior.resize(a.prior.size());
  m.mean.resize(a.mean.size());
  m.variance.resize(a.variance.size());
  for (std::size_t c = 0; c < m.classes; ++c) {
    const double ca = a.prior[c] * na;
    const double cb = b.prior[c] * nb;
    const double cc = ca + cb;
    m.prior[c] = cc / total;
    for (std::size_t d = 0; d < m.dims; ++d) {
      const std::size_t i = c * m.dims + d;
      if (cc <= 0.0) {
        m.mean[i] = 0.0;
        m.variance[i] = 1.0;
        continue;
      }
      m.mean[i] = (a.mean[i] * ca + b.mean[i] * cb) / cc;
      // Combine within-shard variance with the between-shard mean shift
      // (parallel variance merge), as a reducer would.
      const double da = a.mean[i] - m.mean[i];
      const double db = b.mean[i] - m.mean[i];
      m.variance[i] = (ca * (a.variance[i] + da * da) +
                       cb * (b.variance[i] + db * db)) /
                      cc;
      if (m.variance[i] < kVarianceFloor) m.variance[i] = kVarianceFloor;
    }
  }
  return m;
}

spark::SparkAppSpec bayes_app() {
  spark::SparkAppSpec app;
  app.name = "Bayes";
  app.iterations = 1;

  // Stage 1: featurize + per-class counting over cached training partitions.
  spark::StageSpec featurize;
  featurize.name = "featurize";
  featurize.task_ops = 2e8;               // ~2 s per task
  featurize.cached_bytes_per_task = 1.5e9;  // spills past N/m ~ 5 on 8 GB
  featurize.shuffle_bytes_per_task = 2e5;  // partial model per task

  // Stage 2: aggregate partial models (few tasks).
  spark::StageSpec aggregate;
  aggregate.name = "aggregateModel";
  aggregate.task_ops = 1e8;
  aggregate.task_count_factor = 0.25;
  aggregate.broadcast_bytes = 5e5;  // model redistribution

  app.stages = {featurize, aggregate};
  app.driver_ops_per_job = 5e7;  // final model assembly at the driver
  return app;
}

}  // namespace ipso::wl
