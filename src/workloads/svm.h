#pragma once

#include "spark/stage.h"
#include "workloads/datagen.h"

#include <cstdint>
#include <vector>

/// \file svm.h
/// Support Vector Machine — one of the paper's four Spark benchmarks.
/// Functional kernel: linear SVM trained by mini-batch subgradient descent
/// on the hinge loss (what Spark MLlib's SVMWithSGD does). The Spark DAG is
/// iterative: each epoch broadcasts the weight vector and maps a gradient
/// pass over the cached training partitions.

namespace ipso::wl {

/// Linear model: weights + bias. Labels are 0/1 externally, -1/+1 inside.
struct SvmModel {
  std::vector<double> weights;
  double bias = 0.0;
};

/// Trains for `epochs` full passes; `lambda` is the L2 regularizer.
SvmModel svm_train(const std::vector<LabeledPoint>& data, std::size_t epochs,
                   double learning_rate = 0.05, double lambda = 1e-3);

/// Decision value w·x + b.
double svm_margin(const SvmModel& model, const std::vector<double>& x);

/// Predicted label in {0, 1}.
int svm_predict(const SvmModel& model, const std::vector<double>& x);

/// Classification accuracy on labeled data.
double svm_accuracy(const SvmModel& model,
                    const std::vector<LabeledPoint>& data);

/// Mean hinge loss + L2 penalty (the training objective; must decrease).
double svm_objective(const SvmModel& model,
                     const std::vector<LabeledPoint>& data, double lambda);

/// Spark DAG for the simulated SVM job (iterative, broadcast per epoch).
spark::SparkAppSpec svm_app();

}  // namespace ipso::wl
