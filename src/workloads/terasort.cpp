#include "workloads/terasort.h"

#include <algorithm>
#include <queue>

namespace ipso::wl {

std::vector<TeraRecord> teragen(std::uint64_t seed, std::size_t count) {
  stats::Rng rng(seed);
  std::vector<TeraRecord> out(count);
  for (auto& rec : out) {
    for (auto& b : rec.key) {
      b = static_cast<std::uint8_t>(rng.uniform_below(256));
    }
    // TeraGen fills the payload with printable filler derived from the row;
    // random bytes preserve the same size/compressibility characteristics.
    for (auto& b : rec.payload) {
      b = static_cast<std::uint8_t>(rng.uniform_below(256));
    }
  }
  return out;
}

std::vector<TeraRecord> terasort_map(std::vector<TeraRecord> shard) {
  std::sort(shard.begin(), shard.end());
  return shard;
}

std::vector<std::array<std::uint8_t, 10>> terasort_split_keys(
    const std::vector<TeraRecord>& sample, std::size_t partitions) {
  std::vector<std::array<std::uint8_t, 10>> keys;
  if (partitions <= 1 || sample.empty()) return keys;
  std::vector<std::array<std::uint8_t, 10>> sorted;
  sorted.reserve(sample.size());
  for (const auto& rec : sample) sorted.push_back(rec.key);
  std::sort(sorted.begin(), sorted.end());
  keys.reserve(partitions - 1);
  for (std::size_t p = 1; p < partitions; ++p) {
    keys.push_back(sorted[p * sorted.size() / partitions]);
  }
  return keys;
}

std::size_t terasort_partition(
    const std::array<std::uint8_t, 10>& key,
    const std::vector<std::array<std::uint8_t, 10>>& splits) {
  // First split strictly greater than the key marks the partition.
  const auto it = std::upper_bound(splits.begin(), splits.end(), key);
  return static_cast<std::size_t>(it - splits.begin());
}

std::vector<TeraRecord> terasort_merge(
    const std::vector<std::vector<TeraRecord>>& runs) {
  struct Cursor {
    const std::vector<TeraRecord>* run;
    std::size_t pos;
  };
  auto greater = [](const Cursor& a, const Cursor& b) {
    return (*b.run)[b.pos] < (*a.run)[a.pos];
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);
  std::size_t total = 0;
  for (const auto& run : runs) {
    total += run.size();
    if (!run.empty()) heap.push({&run, 0});
  }
  std::vector<TeraRecord> out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out.push_back((*c.run)[c.pos]);
    if (++c.pos < c.run->size()) heap.push(c);
  }
  return out;
}

std::vector<TeraRecord> terasort_run(std::uint64_t seed, std::size_t shards,
                                     std::size_t records_per_shard) {
  std::vector<std::vector<TeraRecord>> runs;
  runs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    runs.push_back(terasort_map(teragen(seed + s, records_per_shard)));
  }
  return terasort_merge(runs);
}

std::uint64_t tera_checksum(const std::vector<TeraRecord>& records) {
  std::uint64_t acc = 0;
  for (const auto& rec : records) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the record
    auto mix = [&h](std::uint8_t b) {
      h ^= b;
      h *= 1099511628211ULL;
    };
    for (auto b : rec.key) mix(b);
    for (auto b : rec.payload) mix(b);
    acc ^= h;  // XOR-fold: permutation-invariant
  }
  return acc;
}

mr::MrWorkloadSpec terasort_spec() {
  mr::MrWorkloadSpec spec;
  spec.name = "TeraSort";
  // Binary records sort cheaper per byte than text: ~8.33 ops/byte gives
  // tp(1) ~ 10.7 s per 128 MB shard and eta ~ 1/3, reproducing the paper's
  // speedup bound of ~3 with epsilon ~ 4 (paper: 4.3).
  spec.map_ops_per_byte = 8.33;
  spec.intermediate_ratio = 1.0;  // all records flow to the reducer
  // Per-shard serial increment pre-spill = ingest (2.276 s) + merge
  // (0.722 ops/B -> 0.924 s) = 3.2 s; the spill adds 2 bytes of disk
  // traffic per overflow byte (2.13 s per shard) once the intermediate
  // exceeds the 2 GB reducer memory at n ~ 15.6 — IN slope 0.15 -> 0.25,
  // matching Fig. 5. The output-commit constant makes Ws(1) = 3.2/0.15.
  spec.merge_ops_per_byte = 0.722;
  spec.fixed_reduce_ops = 1.813e9;
  spec.spill_enabled = true;
  return spec;
}

}  // namespace ipso::wl
