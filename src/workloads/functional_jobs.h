#pragma once

#include "mapreduce/functional.h"
#include "workloads/qmc_pi.h"
#include "workloads/sort.h"
#include "workloads/terasort.h"
#include "workloads/wordcount.h"

#include <memory>
#include <vector>

/// \file functional_jobs.h
/// FunctionalMrJob adapters for the four MapReduce case-study workloads:
/// each really computes (counts, sorts, merges, estimates pi) and verifies
/// a correctness invariant, providing the measured intermediate volumes the
/// grounded simulation consumes (see mapreduce/functional.h).

namespace ipso::wl {

/// WordCount: invariant — total counted occurrences equal total tokens.
class WordCountJob final : public mr::FunctionalMrJob {
 public:
  std::string name() const override { return "WordCount"; }
  void prepare(std::uint64_t seed, std::size_t tasks,
               std::size_t shard_bytes) override;
  std::size_t tasks() const override { return shards_.size(); }
  double run_map(std::size_t i) override;
  double input_bytes(std::size_t i) const override;
  double run_reduce() override;
  bool verify() const override;

 private:
  Dictionary dict_;
  std::vector<std::string> shards_;
  std::vector<WordHistogram> partials_;
  WordHistogram merged_;
  std::uint64_t expected_tokens_ = 0;
};

/// Sort: invariant — output is sorted and a permutation of the input.
class SortJob final : public mr::FunctionalMrJob {
 public:
  std::string name() const override { return "Sort"; }
  void prepare(std::uint64_t seed, std::size_t tasks,
               std::size_t shard_bytes) override;
  std::size_t tasks() const override { return shards_.size(); }
  double run_map(std::size_t i) override;
  double input_bytes(std::size_t i) const override;
  double run_reduce() override;
  bool verify() const override;

 private:
  Dictionary dict_;
  std::vector<std::string> shards_;
  std::vector<std::vector<std::string>> runs_;
  std::vector<std::string> output_;
  std::size_t expected_words_ = 0;
};

/// TeraSort: invariant — output sorted, permutation via XOR checksum.
class TeraSortJob final : public mr::FunctionalMrJob {
 public:
  std::string name() const override { return "TeraSort"; }
  void prepare(std::uint64_t seed, std::size_t tasks,
               std::size_t shard_bytes) override;
  std::size_t tasks() const override { return shards_.size(); }
  double run_map(std::size_t i) override;
  double input_bytes(std::size_t i) const override;
  double run_reduce() override;
  bool verify() const override;

 private:
  std::vector<std::vector<TeraRecord>> shards_;
  std::vector<std::vector<TeraRecord>> runs_;
  std::vector<TeraRecord> output_;
  std::uint64_t input_checksum_ = 0;
};

/// QMC Pi: invariant — the estimate lands within tolerance of pi.
class QmcPiJob final : public mr::FunctionalMrJob {
 public:
  /// `tolerance` on |estimate - pi| for verify().
  explicit QmcPiJob(double tolerance = 5e-3) : tolerance_(tolerance) {}
  std::string name() const override { return "QMC"; }
  void prepare(std::uint64_t seed, std::size_t tasks,
               std::size_t shard_bytes) override;
  std::size_t tasks() const override { return tallies_.size(); }
  double run_map(std::size_t i) override;
  double input_bytes(std::size_t i) const override;
  double run_reduce() override;
  bool verify() const override;

 private:
  double tolerance_;
  std::uint64_t samples_per_task_ = 0;
  std::vector<QmcTally> tallies_;
  double estimate_ = 0.0;
};

}  // namespace ipso::wl
