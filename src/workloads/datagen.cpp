#include "workloads/datagen.h"

namespace ipso::wl {

std::vector<LabeledPoint> make_gaussian_classes(std::uint64_t seed,
                                                std::size_t count,
                                                std::size_t dims,
                                                std::size_t classes) {
  stats::Rng rng(seed);
  std::vector<std::vector<double>> means(classes,
                                         std::vector<double>(dims, 0.0));
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t d = 0; d < dims; ++d) {
      // Well-separated means: +-4 per coordinate keeps classes learnable.
      means[c][d] = rng.uniform(-4.0, 4.0);
    }
  }
  std::vector<LabeledPoint> out(count);
  for (auto& p : out) {
    const std::size_t c = rng.uniform_below(classes);
    p.label = static_cast<int>(c);
    p.features.resize(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      p.features[d] = means[c][d] + rng.normal();
    }
  }
  return out;
}

std::vector<Rating> make_ratings(std::uint64_t seed, std::size_t users,
                                 std::size_t items, std::size_t rank,
                                 double density) {
  stats::Rng rng(seed);
  std::vector<double> u(users * rank), v(items * rank);
  for (auto& x : u) x = rng.normal(0.0, 1.0);
  for (auto& x : v) x = rng.normal(0.0, 1.0);
  std::vector<Rating> out;
  out.reserve(static_cast<std::size_t>(
      static_cast<double>(users) * static_cast<double>(items) * density));
  for (std::uint32_t i = 0; i < users; ++i) {
    for (std::uint32_t j = 0; j < items; ++j) {
      if (rng.uniform() >= density) continue;
      double dot = 0.0;
      for (std::size_t k = 0; k < rank; ++k) {
        dot += u[i * rank + k] * v[j * rank + k];
      }
      out.push_back({i, j, dot + rng.normal(0.0, 0.1)});
    }
  }
  return out;
}

std::vector<Edge> make_graph(std::uint64_t seed, std::size_t nodes,
                             double out_degree) {
  stats::Rng rng(seed);
  std::vector<Edge> edges;
  const auto total = static_cast<std::size_t>(
      static_cast<double>(nodes) * out_degree);
  edges.reserve(total);
  for (std::size_t e = 0; e < total; ++e) {
    const auto src = static_cast<std::uint32_t>(rng.uniform_below(nodes));
    auto dst = static_cast<std::uint32_t>(rng.uniform_below(nodes));
    if (dst == src) dst = (dst + 1) % static_cast<std::uint32_t>(nodes);
    edges.push_back({src, dst, rng.uniform(0.0, 1.0) + 1e-9});
  }
  return edges;
}

}  // namespace ipso::wl
