#pragma once

#include "spark/stage.h"
#include "workloads/datagen.h"

#include <cstdint>
#include <vector>

/// \file bayes.h
/// Bayes Classifier — one of the paper's four Spark benchmarks (Figs. 9-10).
/// The functional kernel is a real Gaussian naive Bayes: per-class feature
/// means/variances estimated in a map-style pass, classification by maximum
/// log-likelihood. The Spark DAG models HiBench's two-stage job
/// (featurize/count, then aggregate the model).

namespace ipso::wl {

/// Trained Gaussian naive Bayes model.
struct BayesModel {
  std::size_t classes = 0;
  std::size_t dims = 0;
  std::vector<double> prior;     ///< classes
  std::vector<double> mean;      ///< classes x dims
  std::vector<double> variance;  ///< classes x dims (floored for stability)
};

/// Trains the model by a single counting pass (the "map" work).
BayesModel bayes_train(const std::vector<LabeledPoint>& data,
                       std::size_t classes);

/// Predicts the class of one sample.
int bayes_predict(const BayesModel& model, const std::vector<double>& x);

/// Fraction of correctly classified samples.
double bayes_accuracy(const BayesModel& model,
                      const std::vector<LabeledPoint>& data);

/// Merges two partial models trained on disjoint shards (the reduce step);
/// both must have identical shape. Sample counts are carried via priors
/// weighted by `count_a` / `count_b`.
BayesModel bayes_merge(const BayesModel& a, std::size_t count_a,
                       const BayesModel& b, std::size_t count_b);

/// Spark DAG for the simulated Bayes job (HiBench-like two stages).
spark::SparkAppSpec bayes_app();

}  // namespace ipso::wl
