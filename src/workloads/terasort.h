#pragma once

#include "mapreduce/workload_spec.h"
#include "stats/random.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

/// \file terasort.h
/// TeraSort (paper Fig. 4(d), Fig. 5): TeraGen-style 100-byte records with
/// 10-byte keys, a sample-based range partitioner, local sort in the map
/// phase and a merging reducer. All data flows to the merge phase
/// (in-proportion IN(n)), and the binary intermediate overflows the ~2 GB
/// reducer memory at n ~ 15, producing the step-wise IN(n) of Fig. 5.

namespace ipso::wl {

/// A TeraGen record: 10-byte key + 90-byte payload.
struct TeraRecord {
  std::array<std::uint8_t, 10> key{};
  std::array<std::uint8_t, 90> payload{};

  friend bool operator<(const TeraRecord& a, const TeraRecord& b) noexcept {
    return a.key < b.key;
  }
  friend bool operator==(const TeraRecord& a, const TeraRecord& b) noexcept {
    return a.key == b.key && a.payload == b.payload;
  }
};

/// Generates `count` deterministic TeraGen records.
std::vector<TeraRecord> teragen(std::uint64_t seed, std::size_t count);

/// Map task: locally sorts one shard of records.
std::vector<TeraRecord> terasort_map(std::vector<TeraRecord> shard);

/// Sample-based range partitioner: picks `partitions - 1` split keys from a
/// sample of the input, as TeraSort's partitioner does.
std::vector<std::array<std::uint8_t, 10>> terasort_split_keys(
    const std::vector<TeraRecord>& sample, std::size_t partitions);

/// Partition index of a key given split points (0-based).
std::size_t terasort_partition(
    const std::array<std::uint8_t, 10>& key,
    const std::vector<std::array<std::uint8_t, 10>>& splits);

/// Reducer: k-way merge of sorted runs.
std::vector<TeraRecord> terasort_merge(
    const std::vector<std::vector<TeraRecord>>& runs);

/// End-to-end functional TeraSort: generate, shard, sort, merge.
std::vector<TeraRecord> terasort_run(std::uint64_t seed, std::size_t shards,
                                     std::size_t records_per_shard);

/// XOR-fold checksum over records; invariant under permutation, used to
/// verify the sort is a permutation of its input.
std::uint64_t tera_checksum(const std::vector<TeraRecord>& records);

/// Simulation cost model for TeraSort, calibrated to the paper's measured
/// IN(n): slope ~0.15 before the reducer-memory overflow at n ~ 15, ~0.25
/// after (Fig. 5), speedup bound ~3 (Fig. 4(d)). Spill is enabled.
mr::MrWorkloadSpec terasort_spec();

}  // namespace ipso::wl
