#pragma once

#include "stats/random.h"

#include <string>
#include <vector>

/// \file textgen.h
/// Synthetic text generation for WordCount and Sort. The paper's working
/// data sets are "randomly generated text, drawn from a UNIX dictionary that
/// contains 1000 words"; we build a deterministic 1000-word dictionary with
/// realistic word-length distribution and draw words Zipf-distributed (real
/// text is Zipfian; a uniform draw would make WordCount's combiner output
/// trivially uniform).

namespace ipso::wl {

/// Deterministic 1000-word dictionary.
class Dictionary {
 public:
  /// Builds the canonical 1000-word dictionary (always the same content).
  Dictionary();

  /// Number of words (always 1000).
  std::size_t size() const noexcept { return words_.size(); }

  /// Word by index.
  const std::string& word(std::size_t i) const { return words_.at(i); }

  /// All words.
  const std::vector<std::string>& words() const noexcept { return words_; }

 private:
  std::vector<std::string> words_;
};

/// Zipf(s ~ 1) sampler over [0, n): P(k) ∝ 1/(k+1)^s.
class ZipfSampler {
 public:
  /// Prepares the CDF for `n` ranks with exponent `s`.
  ZipfSampler(std::size_t n, double s = 1.0);

  /// Draws one rank in [0, n).
  std::size_t sample(stats::Rng& rng) const noexcept;

 private:
  std::vector<double> cdf_;
};

/// Generates approximately `bytes` of space-separated dictionary words.
/// Deterministic for a given seed.
std::string generate_text(const Dictionary& dict, std::uint64_t seed,
                          std::size_t bytes);

/// Splits text into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& text);

}  // namespace ipso::wl
