#include "workloads/functional_jobs.h"

#include <algorithm>
#include <cmath>

namespace ipso::wl {

// --- WordCount

void WordCountJob::prepare(std::uint64_t seed, std::size_t tasks,
                           std::size_t shard_bytes) {
  shards_.clear();
  partials_.clear();
  merged_.clear();
  expected_tokens_ = 0;
  shards_.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    shards_.push_back(generate_text(dict_, seed + t, shard_bytes));
    expected_tokens_ += tokenize(shards_.back()).size();
  }
  partials_.resize(tasks);
}

double WordCountJob::run_map(std::size_t i) {
  partials_[i] = wordcount_map(shards_[i]);
  return wordcount_histogram_bytes(partials_[i]);
}

double WordCountJob::input_bytes(std::size_t i) const {
  return static_cast<double>(shards_[i].size());
}

double WordCountJob::run_reduce() {
  merged_.clear();
  for (const auto& p : partials_) wordcount_merge(merged_, p);
  return wordcount_histogram_bytes(merged_);
}

bool WordCountJob::verify() const {
  return wordcount_total(merged_) == expected_tokens_;
}

// --- Sort

void SortJob::prepare(std::uint64_t seed, std::size_t tasks,
                      std::size_t shard_bytes) {
  shards_.clear();
  runs_.clear();
  output_.clear();
  expected_words_ = 0;
  for (std::size_t t = 0; t < tasks; ++t) {
    shards_.push_back(generate_text(dict_, seed + t, shard_bytes));
    expected_words_ += tokenize(shards_.back()).size();
  }
  runs_.resize(tasks);
}

double SortJob::run_map(std::size_t i) {
  runs_[i] = sort_map(shards_[i]);
  double bytes = 0.0;
  for (const auto& w : runs_[i]) bytes += static_cast<double>(w.size()) + 1.0;
  return bytes;
}

double SortJob::input_bytes(std::size_t i) const {
  return static_cast<double>(shards_[i].size());
}

double SortJob::run_reduce() {
  output_ = sort_merge(runs_);
  double bytes = 0.0;
  for (const auto& w : output_) bytes += static_cast<double>(w.size()) + 1.0;
  return bytes;
}

bool SortJob::verify() const {
  return output_.size() == expected_words_ && is_sorted_output(output_);
}

// --- TeraSort

void TeraSortJob::prepare(std::uint64_t seed, std::size_t tasks,
                          std::size_t shard_bytes) {
  shards_.clear();
  runs_.clear();
  output_.clear();
  input_checksum_ = 0;
  const std::size_t records = std::max<std::size_t>(1, shard_bytes / 100);
  for (std::size_t t = 0; t < tasks; ++t) {
    shards_.push_back(teragen(seed + t, records));
    input_checksum_ ^= tera_checksum(shards_.back());
  }
  runs_.resize(tasks);
}

double TeraSortJob::run_map(std::size_t i) {
  runs_[i] = terasort_map(shards_[i]);
  return static_cast<double>(runs_[i].size()) * 100.0;
}

double TeraSortJob::input_bytes(std::size_t i) const {
  return static_cast<double>(shards_[i].size()) * 100.0;
}

double TeraSortJob::run_reduce() {
  output_ = terasort_merge(runs_);
  return static_cast<double>(output_.size()) * 100.0;
}

bool TeraSortJob::verify() const {
  return std::is_sorted(output_.begin(), output_.end()) &&
         tera_checksum(output_) == input_checksum_;
}

// --- QMC Pi

void QmcPiJob::prepare(std::uint64_t /*seed*/, std::size_t tasks,
                       std::size_t shard_bytes) {
  // One "byte" of the logical shard corresponds to one sample's footprint;
  // the functional layer evaluates the down-sampled count for real.
  tallies_.assign(tasks, {});
  samples_per_task_ = std::max<std::uint64_t>(1, shard_bytes);
  estimate_ = 0.0;
}

double QmcPiJob::run_map(std::size_t i) {
  tallies_[i] =
      qmc_map(static_cast<std::uint64_t>(i) * samples_per_task_,
              samples_per_task_);
  return 16.0;  // two 8-byte counters
}

double QmcPiJob::input_bytes(std::size_t i) const {
  (void)i;
  return static_cast<double>(samples_per_task_);
}

double QmcPiJob::run_reduce() {
  estimate_ = qmc_estimate(tallies_.data(), tallies_.size());
  return 8.0;
}

bool QmcPiJob::verify() const {
  return std::abs(estimate_ - M_PI) < tolerance_;
}

}  // namespace ipso::wl
