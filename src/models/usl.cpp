#include "models/usl.h"

#include <cmath>

namespace ipso::models {

double UslModel::speedup(const UslParams& p, double n) noexcept {
  return n / (1.0 + p.sigma * (n - 1.0) + p.kappa * n * (n - 1.0));
}

Expected<UslParams> UslModel::fit_from_q(const stats::Series& q) {
  double s11 = 0.0, s12 = 0.0, s22 = 0.0, b1 = 0.0, b2 = 0.0;
  for (const auto& p : q.points()) {
    if (p.x <= 1.0) continue;
    const double a1 = p.x - 1.0;
    const double a2 = p.x * (p.x - 1.0);
    s11 += a1 * a1;
    s12 += a1 * a2;
    s22 += a2 * a2;
    b1 += a1 * p.y;
    b2 += a2 * p.y;
  }
  if (s11 <= 0.0) return FitError::kInsufficientData;
  const double det = s11 * s22 - s12 * s12;
  UslParams fit;
  if (std::abs(det) > 1e-12) {
    fit.sigma = (b1 * s22 - b2 * s12) / det;
    fit.kappa = (b2 * s11 - b1 * s12) / det;
  } else {
    fit.sigma = b1 / s11;  // degenerate: one usable n, no kappa term
  }
  return fit;
}

Expected<FittedModel> UslModel::fit(const Observations& obs) const {
  stats::Series q("q(n)");
  for (const auto& p : obs.speedup.points()) {
    if (p.x <= 0.0 || p.y <= 0.0) return FitError::kNonPositiveValue;
    q.add(p.x, p.x / p.y - 1.0);
  }
  const Expected<UslParams> params = fit_from_q(q);
  if (!params.has_value()) return params.error();
  const UslParams usl = *params;
  FittedModel out;
  out.model = name();
  out.params = {{"sigma", usl.sigma}, {"kappa", usl.kappa}};
  out.param_count = param_count();
  out.predict = [usl](double n) { return speedup(usl, n); };
  return out;
}

}  // namespace ipso::models
