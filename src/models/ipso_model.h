#pragma once

#include "core/fit.h"
#include "models/scaling_model.h"

/// \file ipso_model.h
/// The IPSO asymptotic model (paper Eq. 16) as a zoo member, wrapping the
/// repository's own `fit_factors`. Because the zoo fits from speedup
/// observations alone (no per-phase workload split), the factor series are
/// reconstructed from S(n):
///
///  - fixed-size (δ = 0 structurally, EX = 1): Eq. 16 inverts exactly to
///    q(n) = n·(1/S - (1-η))/η - 1, the same series a workload trace would
///    yield, and `fit_factors(kFixedSize, ...)` fits β, γ from it.
///  - fixed-time: δ enters and the inversion is no longer closed-form, so
///    (δ, β, γ) are fitted by Nelder-Mead on Eq. 16 directly (α = 1; with
///    only S(n) observed, α is not separately identifiable from δ) and
///    packed into a synthetic FactorFits.
///
/// Both paths end in a FactorFits, so the serve tier can cache and persist
/// zoo refits through the same TieredStore + bit-exact codec as the `fit`
/// op — warm restarts reuse them byte-identically.

namespace ipso::models {

/// IPSO (Eq. 16) as a zoo member.
class IpsoModel final : public ScalingModel {
 public:
  const char* name() const noexcept override { return "ipso"; }
  std::size_t param_count() const noexcept override { return 3; }

  /// Fits via fit_observations and wraps the result (from_fits).
  Expected<FittedModel> fit(const Observations& obs) const override;

  /// The factor-fitting entry point: observations in, FactorFits out.
  /// Exposed separately so the serve engine can route exactly this
  /// computation through its TieredStore (cache + disk) and then rebuild
  /// the FittedModel with from_fits — `fits_performed` counts zoo refits
  /// the same way it counts `fit`-op misses.
  [[nodiscard]] static Expected<FactorFits> fit_observations(
      const Observations& obs);

  /// Builds the zoo-facing FittedModel from factor fits (Eq. 16 predictor,
  /// named η/α/δ/β/γ). param_count is 2 for fixed-size (β, γ free) and 3
  /// for fixed-time (δ, β, γ free).
  [[nodiscard]] static FittedModel from_fits(const FactorFits& fits);
};

}  // namespace ipso::models
