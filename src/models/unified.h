#pragma once

#include "models/scaling_model.h"

/// \file unified.h
/// Schryen-style unified speedup model. Schryen's framework puts the
/// classic laws on one asymptotic footing: inverted speedup is a parallel
/// fraction term plus an explicit parallelization-overhead term,
///
///   S(n) = 1 / ((1-f) + f/n + c·n^g),   f ∈ [0,1], c ≥ 0, g ≥ 0.
///
/// c = 0 recovers Amdahl exactly; c > 0 adds the overhead growth that
/// produces sublinear and retrograde scaling (IPSO's q(n) plays the same
/// role in Eq. 16). Three free parameters, fitted by Nelder-Mead in
/// S-space, seeded from the closed-form Amdahl fit plus a log-log
/// regression of the residual overhead.

namespace ipso::models {

/// Unified-model parameters.
struct UnifiedParams {
  double f = 1.0;  ///< parallel fraction, clamped to [0,1]
  double c = 0.0;  ///< overhead coefficient, clamped to >= 0
  double g = 1.0;  ///< overhead exponent, clamped to >= 0
};

/// The unified speedup model as a zoo member.
class UnifiedModel final : public ScalingModel {
 public:
  const char* name() const noexcept override { return "unified"; }
  std::size_t param_count() const noexcept override { return 3; }

  /// Requires >= 3 points with n > 1 (three free parameters). The simplex
  /// objective clamps parameters into their domain, so the returned fit is
  /// always in-domain and the minimization is deterministic.
  Expected<FittedModel> fit(const Observations& obs) const override;

  /// The law itself, for direct evaluation.
  [[nodiscard]] static double speedup(const UnifiedParams& p,
                                      double n) noexcept;
};

}  // namespace ipso::models
