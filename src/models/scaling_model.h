#pragma once

#include "core/expected.h"
#include "core/workload.h"
#include "stats/series.h"

#include <functional>
#include <string>
#include <utility>
#include <vector>

/// \file scaling_model.h
/// The common interface of the scaling-law model zoo. IPSO (Eq. 16) is one
/// point in a family of speedup laws — Gunther's USL, Schryen's unified
/// model, and the classic Amdahl/Gustafson laws all predict S(n) from a
/// handful of parameters fitted to the same `(n, speedup)` observations.
/// Every law implements ScalingModel so the ModelZoo (zoo.h) can fit them
/// side by side and select a winner by information criterion.

namespace ipso::models {

/// One observation set: speedup S(n) measured at scale-out degrees n,
/// normalized so S(1) = 1. `eta` is the parallelizable fraction at n = 1
/// (paper Eq. 9) where known; laws that cannot use it ignore it. `type`
/// selects the external-scaling regime for the IPSO member (fixed-size
/// forces delta = 0, paper Section IV).
struct Observations {
  WorkloadType type = WorkloadType::kFixedSize;
  double eta = 1.0;
  stats::Series speedup;  ///< (n, S(n)) points
};

/// A fitted law: named parameters in a deterministic order plus a predictor.
/// `param_count` is the number of free parameters actually estimated — the
/// k in AIC = m·ln(RSS/m) + 2k — which can be smaller than `params.size()`
/// when a member reports derived or fixed values for inspection.
struct FittedModel {
  std::string model;                                   ///< registry name
  std::vector<std::pair<std::string, double>> params;  ///< ordered, named
  std::size_t param_count = 1;                         ///< free params (AIC k)
  std::function<double(double)> predict;               ///< S(n), n >= 1
};

/// A scaling law that can be fitted to speedup observations. Implementations
/// are stateless and deterministic: the same observations always produce the
/// same FittedModel, bit for bit — the serve tier's byte-identity contract
/// (responses are pure functions of request bytes) depends on it.
class ScalingModel {
 public:
  virtual ~ScalingModel() = default;

  /// Registry name, e.g. "amdahl", "usl", "ipso". Stable across releases:
  /// the serve `compare` op exposes it on the wire.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Number of free parameters the fit estimates (the AIC k).
  [[nodiscard]] virtual std::size_t param_count() const noexcept = 0;

  /// Fits the law to the observations. Errors use the shared FitError
  /// vocabulary: kInsufficientData (too few usable points for this law's
  /// parameter count), kNonPositiveValue (a speedup or n <= 0),
  /// kFitFailed (the regression or simplex rejected the data).
  [[nodiscard]] virtual Expected<FittedModel> fit(
      const Observations& obs) const = 0;
};

/// Residual sum of squares of a fitted model over observations, in S-space.
/// All zoo members are scored in the same space so AIC values compare.
[[nodiscard]] double residual_ss(const FittedModel& fitted,
                                 const stats::Series& speedup);

}  // namespace ipso::models
