#pragma once

#include "models/scaling_model.h"

/// \file usl.h
/// Gunther's Universal Scalability Law: S(n) = n / (1 + σ(n-1) + κn(n-1)).
/// σ is contention (serialization) and κ is coherency (crosstalk); κ > 0
/// gives the law its retrograde region — the type-IV peak in IPSO's
/// taxonomy. The fit is closed-form: n/S - 1 = σ(n-1) + κn(n-1) is linear
/// in (σ, κ), so the 2x2 normal equations solve it exactly. This was
/// PR 7's C8 cross-check, inlined in bench_serve_load; it lives here now
/// so the bench and the zoo can never disagree.

namespace ipso::models {

/// USL parameters: contention σ and coherency κ.
struct UslParams {
  double sigma = 0.0;
  double kappa = 0.0;
};

/// Gunther's USL as a zoo member.
class UslModel final : public ScalingModel {
 public:
  const char* name() const noexcept override { return "usl"; }
  std::size_t param_count() const noexcept override { return 2; }

  /// Fits over speedup observations via the q(n) = n/S(n) - 1 transform.
  Expected<FittedModel> fit(const Observations& obs) const override;

  /// Closed-form least squares on a measured q(n) = n/S(n) - 1 series —
  /// the same series the IPSO q-fit consumes. Points with n <= 1 are
  /// skipped (q(1) = 0 is structural, not informative). Degenerate input
  /// (one usable n) fits σ alone with κ = 0; no usable points is
  /// kInsufficientData.
  [[nodiscard]] static Expected<UslParams> fit_from_q(const stats::Series& q);

  /// The law itself, for direct evaluation.
  [[nodiscard]] static double speedup(const UslParams& p, double n) noexcept;
};

}  // namespace ipso::models
