#pragma once

#include "models/scaling_model.h"

/// \file laws.h
/// The classic speedup laws as degenerate zoo baselines. Both are one-
/// parameter laws, linear in their transform, so the fits are closed-form
/// OLS through the origin — exactly reproducible, no iteration.

namespace ipso::models {

/// Amdahl's law: S(n) = 1 / ((1-f) + f/n) with parallel fraction f in [0,1].
/// The transform 1 - 1/S = f·(1 - 1/n) is linear through the origin, so
/// f = Σ x·y / Σ x² over points with n > 1, clamped to [0,1].
class AmdahlModel final : public ScalingModel {
 public:
  const char* name() const noexcept override { return "amdahl"; }
  std::size_t param_count() const noexcept override { return 1; }
  Expected<FittedModel> fit(const Observations& obs) const override;

  /// The law itself, for direct evaluation.
  [[nodiscard]] static double speedup(double f, double n) noexcept;
};

/// Gustafson's law: S(n) = (1-f) + f·n — scaled speedup, linear in n.
/// The transform S - 1 = f·(n - 1) gives f = Σ (n-1)(S-1) / Σ (n-1)²,
/// clamped to [0,1].
class GustafsonModel final : public ScalingModel {
 public:
  const char* name() const noexcept override { return "gustafson"; }
  std::size_t param_count() const noexcept override { return 1; }
  Expected<FittedModel> fit(const Observations& obs) const override;

  /// The law itself, for direct evaluation.
  [[nodiscard]] static double speedup(double f, double n) noexcept;
};

}  // namespace ipso::models
