#include "models/ipso_model.h"

#include "core/model.h"
#include "stats/nonlinear.h"

#include <algorithm>
#include <cmath>

namespace ipso::models {
namespace {

/// Eq. 16 with α = 1 over a raw double n (the NodeCount boundary is applied
/// by the public predictor; the simplex explores n from the series only).
double eq16(double eta, double delta, double beta, double gamma,
            double n) noexcept {
  const double q = n > 1.0 ? beta * std::pow(n, gamma) : 0.0;
  const double num = eta * std::pow(n, delta) + 1.0 - eta;
  const double den = eta * std::pow(n, delta - 1.0) * (1.0 + q) + 1.0 - eta;
  return num / den;
}

Expected<FactorFits> fit_fixed_size(const Observations& obs) {
  FactorMeasurements m;
  m.eta = obs.eta;
  stats::Series ones("EX(n)");
  stats::Series q("q(n)");
  for (const auto& p : obs.speedup.points()) {
    ones.add(p.x, 1.0);
    // Eq. 16 (δ = 0, α = 1) inverted: q(n) = n·(1/S - (1-η))/η - 1.
    q.add(p.x, p.x * (1.0 / p.y - (1.0 - obs.eta)) / obs.eta - 1.0);
  }
  m.ex = ones;
  if (obs.eta < 1.0) m.in = ones;
  m.q = q;
  return fit_factors(WorkloadType::kFixedSize, m);
}

Expected<FactorFits> fit_fixed_time(const Observations& obs) {
  std::size_t usable = 0;
  for (const auto& p : obs.speedup.points()) {
    if (p.x > 1.0) ++usable;
  }
  if (usable < 3) return FitError::kInsufficientData;

  // Seed δ from the measured tail growth (S ~ n^δ when overhead is small),
  // β/γ from modest defaults; the simplex refines all three.
  double delta0 = obs.type == WorkloadType::kFixedSize ? 0.0 : 1.0;
  const Expected<stats::PowerFit> tail = fit_tail_growth(obs.speedup);
  if (tail.has_value()) delta0 = std::clamp(tail->exponent, 0.0, 1.0);

  const double eta = obs.eta;
  const auto model = [eta](const std::vector<double>& v, double n) {
    const double delta = std::clamp(v[0], 0.0, 1.0);
    const double beta = std::max(v[1], 0.0);
    const double gamma = std::clamp(v[2], 0.0, 4.0);
    return eq16(eta, delta, beta, gamma, n);
  };
  stats::NelderMeadOptions opts;
  opts.max_iters = 4000;
  const stats::MinimizeResult min =
      stats::fit_curve(obs.speedup, model, {delta0, 0.01, 1.0}, opts);
  if (min.params.size() != 3 || !std::isfinite(min.value)) {
    return FitError::kFitFailed;
  }
  const double delta = std::clamp(min.params[0], 0.0, 1.0);
  const double beta = std::max(min.params[1], 0.0);
  const double gamma = std::clamp(min.params[2], 0.0, 4.0);

  FactorFits out;
  out.params = AsymptoticParams::make(obs.type, Eta(obs.eta), Alpha(1.0),
                                      Delta(delta), Beta(beta), Gamma(gamma));
  out.epsilon_fit = {1.0, delta, 1.0};
  if (beta > 0.0 && gamma > 0.0) {
    out.q_fit = stats::PowerFit{beta, gamma, 1.0};
  } else {
    out.q_fit = FitError::kNegligibleOverhead;
  }
  out.in_linear = obs.eta < 1.0 ? FitError::kNotMeasured
                                : FitError::kNoSerialComponent;
  out.in_segmented = FitError::kNotMeasured;
  return out;
}

}  // namespace

Expected<FactorFits> IpsoModel::fit_observations(const Observations& obs) {
  std::size_t usable = 0;
  for (const auto& p : obs.speedup.points()) {
    if (p.x <= 0.0 || p.y <= 0.0) return FitError::kNonPositiveValue;
    if (p.x > 1.0) ++usable;
  }
  if (usable < 2) return FitError::kInsufficientData;
  if (obs.eta <= 0.0 || obs.eta > 1.0) return FitError::kOutOfDomain;
  return obs.type == WorkloadType::kFixedSize ? fit_fixed_size(obs)
                                              : fit_fixed_time(obs);
}

FittedModel IpsoModel::from_fits(const FactorFits& fits) {
  const AsymptoticParams params = fits.params;
  FittedModel out;
  out.model = "ipso";
  out.params = {{"eta", params.eta},
                {"alpha", params.alpha},
                {"delta", params.delta},
                {"beta", params.beta},
                {"gamma", params.gamma}};
  out.param_count = params.type == WorkloadType::kFixedSize ? 2 : 3;
  out.predict = [params](double n) {
    return speedup_asymptotic(params, NodeCount(std::max(n, 1.0)));
  };
  return out;
}

Expected<FittedModel> IpsoModel::fit(const Observations& obs) const {
  const Expected<FactorFits> fits = fit_observations(obs);
  if (!fits.has_value()) return fits.error();
  return from_fits(*fits);
}

}  // namespace ipso::models
