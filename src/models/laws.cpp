#include "models/laws.h"

#include <algorithm>
#include <cmath>

namespace ipso::models {

double residual_ss(const FittedModel& fitted, const stats::Series& speedup) {
  double rss = 0.0;
  for (const auto& p : speedup.points()) {
    const double r = p.y - fitted.predict(p.x);
    rss += r * r;
  }
  return rss;
}

double AmdahlModel::speedup(double f, double n) noexcept {
  return 1.0 / ((1.0 - f) + f / n);
}

Expected<FittedModel> AmdahlModel::fit(const Observations& obs) const {
  double sxx = 0.0;
  double sxy = 0.0;
  std::size_t usable = 0;
  for (const auto& p : obs.speedup.points()) {
    if (p.x <= 0.0 || p.y <= 0.0) return FitError::kNonPositiveValue;
    if (p.x <= 1.0) continue;  // the transform is 0/0-free only for n > 1
    const double x = 1.0 - 1.0 / p.x;
    const double y = 1.0 - 1.0 / p.y;
    sxx += x * x;
    sxy += x * y;
    ++usable;
  }
  if (usable < 1 || sxx <= 0.0) return FitError::kInsufficientData;
  const double f = std::clamp(sxy / sxx, 0.0, 1.0);
  FittedModel out;
  out.model = name();
  out.params = {{"f", f}};
  out.param_count = param_count();
  out.predict = [f](double n) { return speedup(f, n); };
  return out;
}

double GustafsonModel::speedup(double f, double n) noexcept {
  return (1.0 - f) + f * n;
}

Expected<FittedModel> GustafsonModel::fit(const Observations& obs) const {
  double sxx = 0.0;
  double sxy = 0.0;
  std::size_t usable = 0;
  for (const auto& p : obs.speedup.points()) {
    if (p.x <= 0.0 || p.y <= 0.0) return FitError::kNonPositiveValue;
    if (p.x <= 1.0) continue;
    const double x = p.x - 1.0;
    const double y = p.y - 1.0;
    sxx += x * x;
    sxy += x * y;
    ++usable;
  }
  if (usable < 1 || sxx <= 0.0) return FitError::kInsufficientData;
  const double f = std::clamp(sxy / sxx, 0.0, 1.0);
  FittedModel out;
  out.model = name();
  out.params = {{"f", f}};
  out.param_count = param_count();
  out.predict = [f](double n) { return speedup(f, n); };
  return out;
}

}  // namespace ipso::models
