#include "models/zoo.h"

#include "models/ipso_model.h"
#include "models/laws.h"
#include "models/unified.h"
#include "models/usl.h"

#include <cmath>
#include <string_view>

namespace ipso::models {
namespace {

/// Sentinel charged per leave-out whose refit fails: large enough to lose
/// every tie-break, finite so the scoreboard stays printable.
constexpr double kFailedLeaveOutError = 1e12;

/// AIC ties below this are "equal evidence" and fall through to CV error.
constexpr double kAicTie = 1e-9;

/// Fits one law, preferring the hook for the IPSO member's factor fit.
Expected<FittedModel> fit_law(const ScalingModel& law, const Observations& obs,
                              const IpsoFitHook& ipso_hook) {
  if (ipso_hook && std::string_view(law.name()) == "ipso") {
    const Expected<FactorFits> fits = ipso_hook(obs);
    if (!fits.has_value()) return fits.error();
    return IpsoModel::from_fits(*fits);
  }
  return law.fit(obs);
}

/// Mean squared leave-one-out error. Refits exclude the hook: the held-out
/// fits are throwaways and must not churn the serve tier's cache. Failed
/// refits charge a deterministic sentinel so laws that only just fit (m at
/// their parameter floor) rank below laws that stay stable under deletion.
double loo_cv(const ScalingModel& law, const Observations& obs) {
  const std::size_t m = obs.speedup.size();
  double total = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    Observations rest;
    rest.type = obs.type;
    rest.eta = obs.eta;
    rest.speedup = stats::Series(obs.speedup.name());
    for (std::size_t j = 0; j < m; ++j) {
      if (j != i) rest.speedup.add(obs.speedup[j].x, obs.speedup[j].y);
    }
    const Expected<FittedModel> refit = law.fit(rest);
    if (!refit.has_value()) {
      total += kFailedLeaveOutError;
      continue;
    }
    const double r = obs.speedup[i].y - refit->predict(obs.speedup[i].x);
    total += r * r;
  }
  return m > 0 ? total / static_cast<double>(m) : 0.0;
}

}  // namespace

double aic_score(double rss, std::size_t m, std::size_t k) {
  const double md = static_cast<double>(m);
  return md * std::log(std::max(rss, 1e-30) / md) +
         2.0 * static_cast<double>(k);
}

ModelZoo::ModelZoo() {
  laws_.push_back(std::make_unique<AmdahlModel>());
  laws_.push_back(std::make_unique<GustafsonModel>());
  laws_.push_back(std::make_unique<UslModel>());
  laws_.push_back(std::make_unique<UnifiedModel>());
  laws_.push_back(std::make_unique<IpsoModel>());
}

Expected<ZooResult> ModelZoo::compare(const Observations& obs,
                                      const IpsoFitHook& ipso_hook) const {
  std::size_t usable = 0;
  for (const auto& p : obs.speedup.points()) {
    if (p.x > 1.0) ++usable;
  }
  if (usable < 2) return FitError::kInsufficientData;

  ZooResult result;
  result.scores.reserve(laws_.size());
  const std::size_t m = obs.speedup.size();
  for (const auto& law : laws_) {
    ModelScore score;
    score.model = law->name();
    const Expected<FittedModel> fitted = fit_law(*law, obs, ipso_hook);
    if (!fitted.has_value()) {
      score.error = to_string(fitted.error());
      result.scores.push_back(std::move(score));
      continue;
    }
    score.ok = true;
    score.params = fitted->params;
    score.param_count = fitted->param_count;
    score.rss = residual_ss(*fitted, obs.speedup);
    score.aic = aic_score(score.rss, m, fitted->param_count);
    score.cv = loo_cv(*law, obs);
    score.predict = fitted->predict;
    result.scores.push_back(std::move(score));
  }

  bool any = false;
  for (std::size_t i = 0; i < result.scores.size(); ++i) {
    const ModelScore& s = result.scores[i];
    if (!s.ok) continue;
    if (!any) {
      any = true;
      result.winner = i;
      continue;
    }
    const ModelScore& best = result.scores[result.winner];
    if (s.aic < best.aic - kAicTie ||
        (std::abs(s.aic - best.aic) <= kAicTie && s.cv < best.cv)) {
      result.winner = i;
    }
  }
  if (!any) return FitError::kFitFailed;
  result.winner_name = result.scores[result.winner].model;
  return result;
}

}  // namespace ipso::models
