#include "models/unified.h"

#include "models/laws.h"
#include "stats/nonlinear.h"
#include "stats/regression.h"

#include <algorithm>
#include <cmath>

namespace ipso::models {
namespace {

UnifiedParams clamp_params(const std::vector<double>& v) noexcept {
  UnifiedParams p;
  p.f = std::clamp(v[0], 0.0, 1.0);
  p.c = std::max(v[1], 0.0);
  p.g = std::clamp(v[2], 0.0, 4.0);
  return p;
}

}  // namespace

double UnifiedModel::speedup(const UnifiedParams& p, double n) noexcept {
  // Overhead is structural only for n > 1: like IPSO's q(1) = 0, a
  // sequential run pays no parallelization overhead, so S(1) = 1 exactly.
  const double overhead = n > 1.0 ? p.c * std::pow(n, p.g) : 0.0;
  return 1.0 / ((1.0 - p.f) + p.f / n + overhead);
}

Expected<FittedModel> UnifiedModel::fit(const Observations& obs) const {
  std::size_t usable = 0;
  for (const auto& p : obs.speedup.points()) {
    if (p.x <= 0.0 || p.y <= 0.0) return FitError::kNonPositiveValue;
    if (p.x > 1.0) ++usable;
  }
  if (usable < 3) return FitError::kInsufficientData;

  // Seed f from the closed-form Amdahl fit, then seed (c, g) from a
  // log-log regression of the residual overhead r = 1/S - ((1-f) + f/n).
  const AmdahlModel amdahl;
  const Expected<FittedModel> seed_fit = amdahl.fit(obs);
  const double f0 = seed_fit.has_value() ? seed_fit->params.front().second
                                         : 0.9;
  stats::Series residual("overhead");
  for (const auto& p : obs.speedup.points()) {
    if (p.x <= 1.0) continue;
    const double r = 1.0 / p.y - ((1.0 - f0) + f0 / p.x);
    if (r > 0.0) residual.add(p.x, r);
  }
  double c0 = 1e-3;
  double g0 = 1.0;
  if (residual.size() >= 2) {
    const stats::PowerFit pf = stats::fit_power(residual);
    if (pf.coeff > 0.0) {
      c0 = pf.coeff;
      g0 = std::clamp(pf.exponent, 0.0, 4.0);
    }
  }

  const auto objective = [](const std::vector<double>& v, double n) {
    return speedup(clamp_params(v), n);
  };
  stats::NelderMeadOptions opts;
  opts.max_iters = 4000;
  const stats::MinimizeResult min =
      stats::fit_curve(obs.speedup, objective, {f0, c0, g0}, opts);
  if (min.params.size() != 3 || !std::isfinite(min.value)) {
    return FitError::kFitFailed;
  }
  const UnifiedParams p = clamp_params(min.params);
  FittedModel out;
  out.model = name();
  out.params = {{"f", p.f}, {"c", p.c}, {"g", p.g}};
  out.param_count = param_count();
  out.predict = [p](double n) { return speedup(p, n); };
  return out;
}

}  // namespace ipso::models
