#pragma once

#include "core/fit.h"
#include "models/scaling_model.h"

#include <memory>

/// \file zoo.h
/// The model zoo: fit every registered scaling law over one observation set
/// and pick a winner by information criterion. Selection rule:
///
///   AIC = m·ln(max(RSS, ε)/m) + 2k         (RSS in S-space, ε = 1e-30 so a
///                                           perfect fit scores finite)
///
/// lowest AIC wins; AIC ties (|ΔAIC| < 1e-9) break on leave-one-out
/// cross-validated error; a residual tie breaks on registry order, which is
/// fixed (amdahl, gustafson, usl, unified, ipso) — so perfectly linear
/// speedup, where every law fits exactly, deterministically selects amdahl
/// (f = 1), the fewest-assumption explanation. Every step is a pure
/// function of the observations: the serve `compare` op's byte-identity
/// contract (JSON vs binary, routed vs standalone, cold vs warm restart)
/// rests on this determinism.

namespace ipso::models {

/// Per-model scoreboard row. `ok` is false when the law could not be
/// fitted (e.g. unified needs >= 3 points with n > 1); `error` then names
/// the FitError and the numeric fields are unset sentinels.
struct ModelScore {
  std::string model;          ///< registry name
  bool ok = false;
  std::string error;          ///< FitError name when !ok, empty otherwise
  std::vector<std::pair<std::string, double>> params;  ///< named, ordered
  std::size_t param_count = 0;  ///< AIC k
  double rss = 0.0;           ///< residual sum of squares, S-space
  double aic = 0.0;           ///< m·ln(max(RSS, ε)/m) + 2k
  double cv = 0.0;            ///< mean squared leave-one-out error
  std::function<double(double)> predict;  ///< S(n) when ok, empty otherwise
};

/// Scoreboard + verdict for one observation set.
struct ZooResult {
  std::vector<ModelScore> scores;  ///< registry order, one row per law
  std::size_t winner = 0;          ///< index into `scores`
  std::string winner_name;         ///< scores[winner].model
};

/// Replacement fitter for the IPSO member: observations in, FactorFits
/// out. The serve engine supplies one that routes through its TieredStore,
/// so zoo refits hit the same cache/disk/coalescing path as the `fit` op.
using IpsoFitHook = std::function<Expected<FactorFits>(const Observations&)>;

/// Fits all registered laws over one observation set.
class ModelZoo {
 public:
  /// Registers the fixed zoo: amdahl, gustafson, usl, unified, ipso.
  ModelZoo();

  /// Fits every law and selects the winner. Requires >= 2 points with
  /// n > 1 (kInsufficientData otherwise); individual law failures land in
  /// the scoreboard as !ok rows, but if *no* law fits the whole compare
  /// reports kFitFailed. `ipso_hook`, when set, replaces the IPSO member's
  /// factor fit (see IpsoFitHook).
  [[nodiscard]] Expected<ZooResult> compare(
      const Observations& obs, const IpsoFitHook& ipso_hook = nullptr) const;

  /// The registered laws, in registry (tie-break) order.
  [[nodiscard]] const std::vector<std::unique_ptr<ScalingModel>>& laws()
      const noexcept {
    return laws_;
  }

 private:
  std::vector<std::unique_ptr<ScalingModel>> laws_;
};

/// AIC over m points: m·ln(max(rss, 1e-30)/m) + 2k.
[[nodiscard]] double aic_score(double rss, std::size_t m, std::size_t k);

}  // namespace ipso::models
