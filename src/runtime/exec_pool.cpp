#include "runtime/exec_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace ipso::runtime {

std::size_t default_thread_count(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("IPSO_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ExecPool::ExecPool(std::size_t threads) {
  const std::size_t n = default_thread_count(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ExecPool::~ExecPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ExecPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ExecPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ExecPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ExecPool::parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& body) {
  if (count == 0) return;

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto shared = std::make_shared<Shared>();
  const auto* body_ptr = &body;

  // Helpers and the caller all run the same drain loop. A helper that gets
  // scheduled after the range is exhausted claims an out-of-range index and
  // exits immediately, so stale queue entries are harmless.
  auto drain = [shared, body_ptr, count] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1);
      if (i >= count) break;
      try {
        if (!shared->failed.load(std::memory_order_relaxed)) (*body_ptr)(i);
      } catch (...) {
        if (!shared->failed.exchange(true)) {
          std::lock_guard<std::mutex> lk(shared->mu);
          shared->error = std::current_exception();
        }
      }
      if (shared->done.fetch_add(1) + 1 == count) {
        std::lock_guard<std::mutex> lk(shared->mu);
        shared->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(size(), count);
  for (std::size_t i = 0; i + 1 < helpers; ++i) submit(drain);
  drain();

  {
    std::unique_lock<std::mutex> lk(shared->mu);
    shared->cv.wait(lk, [&] { return shared->done.load() >= count; });
  }
  if (shared->failed.load()) std::rethrow_exception(shared->error);
}

}  // namespace ipso::runtime
