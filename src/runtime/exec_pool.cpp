#include "runtime/exec_pool.h"

#include "core/sync.h"
#include "obs/metrics.h"
#include "obs/span.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

namespace ipso::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Pool-wide instruments, registered once. Updates are no-ops (one relaxed
/// load) while obs is disabled, so the task hot path is unperturbed.
struct PoolInstruments {
  obs::Counter submitted{"runtime.pool.tasks_submitted"};
  obs::Counter executed{"runtime.pool.tasks_executed"};
  obs::Counter indices{"runtime.pool.parallel_for_indices"};
  obs::Gauge queue_depth{"runtime.pool.queue_depth"};
  obs::Histogram wait_seconds{"runtime.pool.wait_seconds"};
  obs::Histogram task_seconds{"runtime.pool.task_seconds"};
};

PoolInstruments& instruments() {
  static PoolInstruments i;
  return i;
}

}  // namespace

std::size_t default_thread_count(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("IPSO_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ExecPool::ExecPool(std::size_t threads) {
  const std::size_t n = default_thread_count(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ExecPool::~ExecPool() {
  {
    sync::MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ExecPool::submit(std::function<void()> task) {
  std::size_t depth;
  {
    sync::MutexLock lk(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  if (obs::enabled()) {
    instruments().submitted.add();
    instruments().queue_depth.set(static_cast<double>(depth));
  }
  work_cv_.notify_one();
}

void ExecPool::wait_idle() {
  sync::MutexLock lk(mu_);
  idle_cv_.wait(mu_, [this]() IPSO_REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  });
}

void ExecPool::worker_loop(std::size_t index) {
  // Per-worker utilization counter; dead-cheap no-op while disabled.
  const obs::Counter busy("runtime.pool.worker_busy_seconds." +
                          std::to_string(index));
  bool track_named = false;
  for (;;) {
    std::function<void()> task;
    const bool observing = obs::enabled();
    const auto wait_t0 = observing ? Clock::now() : Clock::time_point{};
    std::size_t depth;
    {
      sync::MutexLock lk(mu_);
      work_cv_.wait(mu_, [this]() IPSO_REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      depth = queue_.size();
    }
    if (observing) {
      if (!track_named) {
        obs::Tracer::global().name_thread_track("pool-worker-" +
                                                std::to_string(index));
        track_named = true;
      }
      instruments().wait_seconds.observe(seconds_since(wait_t0));
      instruments().queue_depth.set(static_cast<double>(depth));
    }
    const auto task_t0 = observing ? Clock::now() : Clock::time_point{};
    {
      obs::ScopedSpan span("pool task", "runtime");
      task();
    }
    if (observing) {
      const double s = seconds_since(task_t0);
      instruments().executed.add();
      instruments().task_seconds.observe(s);
      busy.add(s);
    }
    {
      sync::MutexLock lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ExecPool::parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& body) {
  if (count == 0) return;

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    sync::Mutex mu;
    std::exception_ptr error IPSO_GUARDED_BY(mu);
    sync::CondVar cv;
  };
  auto shared = std::make_shared<Shared>();
  const auto* body_ptr = &body;

  // Helpers and the caller all run the same drain loop. A helper that gets
  // scheduled after the range is exhausted claims an out-of-range index and
  // exits immediately, so stale queue entries are harmless.
  auto drain = [shared, body_ptr, count] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1);
      if (i >= count) break;
      instruments().indices.add();
      try {
        if (!shared->failed.load(std::memory_order_relaxed)) (*body_ptr)(i);
      } catch (...) {
        if (!shared->failed.exchange(true)) {
          sync::MutexLock lk(shared->mu);
          shared->error = std::current_exception();
        }
      }
      if (shared->done.fetch_add(1) + 1 == count) {
        sync::MutexLock lk(shared->mu);
        shared->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(size(), count);
  for (std::size_t i = 0; i + 1 < helpers; ++i) submit(drain);
  drain();

  // Copy the exception pointer out while still holding the mutex: the old
  // code read shared->error unlocked after the wait, relying on the cv
  // barrier alone, which left a window where a late-failing helper's store
  // to error raced the caller's read (the `failed` flag flips before the
  // pointer is written). Flagged by thread-safety analysis; see
  // test_runtime_pool's ParallelForLateThrowRace regression.
  std::exception_ptr error;
  {
    sync::MutexLock lk(shared->mu);
    shared->cv.wait(shared->mu, [&]() IPSO_REQUIRES(shared->mu) {
      return shared->done.load() >= count;
    });
    error = shared->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ipso::runtime
