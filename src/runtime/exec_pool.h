#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "core/sync.h"

/// \file exec_pool.h
/// A small fixed-size thread pool for the experiment harness. Sweep grids
/// decompose into independent (workload, n, repetition) tasks, so a chunked
/// pool with a shared atomic index is all the scheduling we need: workers
/// (plus the calling thread) claim indices until the range is exhausted.
/// Exceptions thrown by tasks are captured and rethrown on the caller.

namespace ipso::runtime {

/// Resolves a thread count: a non-zero `requested` wins; otherwise the
/// IPSO_THREADS environment variable; otherwise the hardware concurrency
/// (never less than 1).
std::size_t default_thread_count(std::size_t requested = 0) noexcept;

/// Fixed-size worker pool with a FIFO task queue.
///
/// Lock discipline (DESIGN.md §13, capability "runtime.pool"): `mu_` guards
/// the queue and the active-task count. It is a leaf in the engine→pool
/// order: ServeEngine::submit_async calls submit() while holding the engine
/// mutex, so nothing here may call back into serve.
class ExecPool {
 public:
  /// Spawns `threads` workers; 0 means default_thread_count().
  explicit ExecPool(std::size_t threads = 0);
  ~ExecPool();

  ExecPool(const ExecPool&) = delete;
  ExecPool& operator=(const ExecPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task) IPSO_EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is running.
  void wait_idle() IPSO_EXCLUDES(mu_);

  /// Runs body(0) .. body(count-1) across the pool, with the calling thread
  /// participating. Indices are claimed dynamically (chunk size 1), so
  /// uneven task costs balance automatically. Blocks until every index has
  /// finished; if any invocation threw, the first exception is rethrown
  /// here and the remaining unclaimed indices are skipped.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body)
      IPSO_EXCLUDES(mu_);

 private:
  void worker_loop(std::size_t index) IPSO_EXCLUDES(mu_);

  sync::Mutex mu_{"runtime.pool"};
  sync::CondVar work_cv_;
  sync::CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ IPSO_GUARDED_BY(mu_);
  std::size_t active_ IPSO_GUARDED_BY(mu_) = 0;
  bool stop_ IPSO_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace ipso::runtime
