#include "spark/engine.h"

#include "obs/metrics.h"
#include "obs/span.h"
#include "stats/random.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace ipso::spark {

namespace {

/// Emits one simulated-time track per job: a whole-job span, one span per
/// stage, and sub-spans for the stage's phases tagged with their IPSO
/// attribution — broadcast and dispatch are Wo (they exist only because of
/// the scale-out), the wave compute is Wp, the shuffle barrier is Ws.
void trace_spark_stages(const SparkJobResult& r, std::size_t executors,
                        std::size_t total_tasks, std::uint64_t seed) {
  const std::uint32_t track = obs::make_sim_track(
      "spark m=" + std::to_string(executors) +
      " N=" + std::to_string(total_tasks) + " seed=" + std::to_string(seed));
  if (track == obs::Tracer::kInvalidTrack) return;
  obs::record_span(track, "spark job", "spark", 0.0, r.makespan,
                   "\"executors\":" + std::to_string(executors) +
                       ",\"wp\":" + std::to_string(r.components.wp) +
                       ",\"ws\":" + std::to_string(r.components.ws) +
                       ",\"wo\":" + std::to_string(r.components.wo));
  for (const StageMetrics& sm : r.stages) {
    const std::string id = " #" + std::to_string(sm.stage_id);
    obs::record_span(
        track, sm.name + id, "spark", sm.submission_time, sm.completion_time,
        "\"waves\":" + std::to_string(sm.waves) +
            ",\"tasks\":" + std::to_string(sm.tasks) +
            ",\"retries\":" + std::to_string(sm.retries) +
            ",\"spilled\":" + (sm.spilled ? "true" : "false") +
            ",\"rolled_back\":" + (sm.rolled_back ? "true" : "false"));
    double t = sm.submission_time;
    if (sm.broadcast_time > 0.0) {
      obs::record_span(track, "broadcast" + id, "spark", t,
                       t + sm.broadcast_time, "\"attr\":\"Wo\"");
      t += sm.broadcast_time;
    }
    if (sm.dispatch_time > 0.0) {
      obs::record_span(track, "dispatch" + id, "spark", t,
                       t + sm.dispatch_time, "\"attr\":\"Wo\"");
      t += sm.dispatch_time;
    }
    obs::record_span(track, "compute" + id, "spark", t,
                     sm.completion_time - sm.shuffle_time, "\"attr\":\"Wp\"");
    if (sm.shuffle_time > 0.0) {
      obs::record_span(track, "shuffle" + id, "spark",
                       sm.completion_time - sm.shuffle_time,
                       sm.completion_time, "\"attr\":\"Ws\"");
    }
  }
}

}  // namespace

SparkEngine::SparkEngine(sim::ClusterConfig cfg, SparkEngineParams params)
    : cfg_(std::move(cfg)), params_(params) {
  cfg_.validate();
  if (params_.first_wave_overhead < 0 || params_.steady_wave_overhead < 0 ||
      params_.spill_slowdown < 1.0) {
    throw std::invalid_argument("SparkEngineParams: invalid overheads");
  }
  params_.faults.validate();
}

SparkJobResult SparkEngine::run(const SparkAppSpec& app,
                                const SparkJobConfig& job) {
  if (job.total_tasks == 0 || job.executors == 0) {
    throw std::invalid_argument("SparkEngine::run: N and m must be >= 1");
  }
  const std::size_t m = job.executors;
  stats::Rng rng(job.seed);
  const sim::FaultModel fault(params_.faults, job.seed);
  const bool fault_active = fault.active();

  SparkJobResult r;
  r.components.n = static_cast<double>(m);
  double now = cfg_.scheduler.init_seconds;
  std::size_t stage_id = 0;

  for (std::size_t iter = 0; iter < app.iterations; ++iter) {
    for (const auto& spec : app.stages) {
      StageMetrics sm;
      sm.name = spec.name;
      sm.stage_id = stage_id++;
      sm.submission_time = now;

      const auto tasks = static_cast<std::size_t>(std::max(
          1.0, std::round(static_cast<double>(job.total_tasks) *
                          spec.task_count_factor)));
      sm.tasks = tasks;
      const std::size_t waves = (tasks + m - 1) / m;
      sm.waves = waves;

      // Driver-serialized broadcast: each executor receives its own copy.
      if (spec.broadcast_bytes > 0.0) {
        sm.broadcast_time =
            cfg_.network.broadcast_time(spec.broadcast_bytes, m);
        now += sm.broadcast_time;
        r.components.wo += sm.broadcast_time;
      }

      // Driver dispatch: serial per-task cost, growing with cluster size.
      const double dispatch =
          cfg_.scheduler.total_dispatch_time(tasks, m);
      sm.dispatch_time = dispatch;
      r.components.wo += dispatch;

      // Executor-memory pressure: cached partitions of this executor's
      // share of the stage. Spill slows every task of the stage down.
      const double cached_per_executor =
          spec.cached_bytes_per_task *
          (static_cast<double>(tasks) / static_cast<double>(m));
      const bool spilled =
          spec.cached_bytes_per_task > 0.0 &&
          cfg_.worker_memory.overflows(cached_per_executor);
      sm.spilled = spilled;
      r.any_spill = r.any_spill || spilled;
      const double slowdown = spilled ? params_.spill_slowdown : 1.0;

      // Wave-by-wave execution with barrier per wave (stage barrier overall).
      const double base_task = cfg_.worker_cpu.time_for(spec.task_ops);
      double stage_compute = 0.0;
      double max_task = 0.0;
      double wall = 0.0;
      double fault_waste = 0.0;
      std::size_t remaining = tasks;
      std::size_t task_base = 0;  // first job-wide task index of this wave
      for (std::size_t w = 0; w < waves; ++w) {
        const std::size_t in_wave = std::min(remaining, m);
        remaining -= in_wave;
        const double overhead = w == 0 ? params_.first_wave_overhead
                                       : params_.steady_wave_overhead;
        double wave_wall = 0.0;

        // The compute draws always come from the shared stream in task
        // order, so the no-fault execution is bit-identical whether or not
        // the fault layer exists.
        std::vector<sim::TaskFaultOutcome> outcomes(in_wave);
        std::vector<std::uint64_t> ids(in_wave);
        for (std::size_t t = 0; t < in_wave; ++t) {
          const double compute =
              base_task * slowdown * cfg_.straggler.factor(rng);
          ids[t] = task_base + t;
          if (fault_active) {
            outcomes[t] = fault.run_task(compute, sm.stage_id, ids[t], spilled);
          } else {
            outcomes[t].clean = compute;
            outcomes[t].duration = compute;
            outcomes[t].busy = compute;
          }
        }
        if (fault_active) {
          // Speculative execution per wave: a backup copy of the slowest
          // tasks, launched at the wave's cutoff quantile; its compute time
          // redraws the straggler factor from a dedicated deterministic
          // stream (the shared stream stays untouched).
          fault.apply_speculation(
              outcomes, sm.stage_id, ids, spilled, [&](std::size_t i) {
                stats::Rng brng = fault.attempt_rng(sm.stage_id, ids[i], 1);
                return base_task * slowdown * cfg_.straggler.factor(brng);
              });
        }
        for (std::size_t t = 0; t < in_wave; ++t) {
          const sim::TaskFaultOutcome& out = outcomes[t];
          sm.retries += out.failed_attempts;
          if (out.exhausted) sm.rolled_back = true;
          stage_compute += out.clean;
          fault_waste += out.busy - out.clean;
          max_task = std::max(max_task, out.duration);
          wave_wall = std::max(wave_wall, out.duration + overhead);
        }
        sim::FaultModel::accumulate(outcomes, &sm.faults);
        task_base += in_wave;
        wall += wave_wall;
        // Per-wave induced overhead: the scheduling/deserialization part.
        r.components.wo += overhead * static_cast<double>(in_wave);
      }
      if (sm.rolled_back) {
        // One full stage re-execution (bounded recovery): the wall doubles
        // and the duplicated compute — the stage's whole first execution —
        // counts as induced work, so q(n) gains a term ~ P[rollback](n) · n
        // (the Type IV migration of the fault sweep).
        const double first_execution = stage_compute + fault_waste;
        fault_waste += first_execution;
        sm.faults.wasted_seconds += first_execution;
        wall *= 2.0;
        ++sm.faults.rollbacks;
        if (obs::enabled()) {
          static const obs::Counter c_rollbacks("sim.fault.rollbacks");
          c_rollbacks.add();
        }
      }
      r.components.wo += fault_waste;
      r.faults.merge(sm.faults);
      // The compute itself is Wp; the spill excess is scale-out-induced in
      // the fixed-time interpretation (the sequential model streams).
      const double clean_compute = stage_compute / slowdown;
      r.components.wp += clean_compute;
      r.components.wo += stage_compute - clean_compute;
      r.components.max_tp = std::max(r.components.max_tp, max_task);

      now += dispatch + wall;

      // Shuffle barrier to the next stage: all outputs traverse the fabric.
      if (spec.shuffle_bytes_per_task > 0.0) {
        const double bytes =
            spec.shuffle_bytes_per_task * static_cast<double>(tasks);
        const double t = cfg_.network.transfer_time(bytes, m);
        sm.shuffle_time = t;
        now += t;
        r.components.ws += t;  // shuffled data volume scales with N, not m
      }

      sm.completion_time = now;
      r.stages.push_back(std::move(sm));
    }
  }

  if (app.driver_ops_per_job > 0.0) {
    const double t = cfg_.merge_cpu.time_for(app.driver_ops_per_job);
    now += t;
    r.components.ws += t;
  }

  r.makespan = now;
  if (obs::enabled()) {
    trace_spark_stages(r, m, job.total_tasks, job.seed);
  }
  return r;
}

SparkJobResult SparkEngine::run_sequential(const SparkAppSpec& app,
                                           const SparkJobConfig& job) {
  if (job.total_tasks == 0) {
    throw std::invalid_argument("run_sequential: N must be >= 1");
  }
  SparkJobResult r;
  r.components.n = 1.0;
  double now = cfg_.scheduler.init_seconds;
  std::size_t stage_id = 0;

  for (std::size_t iter = 0; iter < app.iterations; ++iter) {
    for (const auto& spec : app.stages) {
      StageMetrics sm;
      sm.name = spec.name;
      sm.stage_id = stage_id++;
      sm.submission_time = now;
      const auto tasks = static_cast<std::size_t>(std::max(
          1.0, std::round(static_cast<double>(job.total_tasks) *
                          spec.task_count_factor)));
      sm.tasks = tasks;
      sm.waves = tasks;

      // One unit streams through every task; no broadcast (local data), no
      // dispatch, no cache pressure (one pass).
      const double compute = cfg_.worker_cpu.time_for(spec.task_ops) *
                             static_cast<double>(tasks);
      r.components.wp += compute;
      r.components.max_tp += compute;  // the single unit does all of Wp
      now += compute;

      if (spec.shuffle_bytes_per_task > 0.0) {
        // Stage outputs still traverse local I/O between stages.
        const double bytes =
            spec.shuffle_bytes_per_task * static_cast<double>(tasks);
        const double io_bw = std::min(cfg_.network.bytes_per_second,
                                      cfg_.disk.bytes_per_second);
        const double t = bytes / io_bw;
        now += t;
        r.components.ws += t;
      }
      sm.completion_time = now;
      r.stages.push_back(std::move(sm));
    }
  }

  if (app.driver_ops_per_job > 0.0) {
    const double t = cfg_.merge_cpu.time_for(app.driver_ops_per_job);
    now += t;
    r.components.ws += t;
  }
  r.makespan = now;
  return r;
}

}  // namespace ipso::spark
