#pragma once

#include "core/workload.h"
#include "sim/cluster.h"
#include "sim/fault.h"
#include "spark/stage.h"

#include <cstdint>
#include <string>
#include <vector>

/// \file engine.h
/// Execution of a Spark-like DAG on the simulated cluster. Mechanisms the
/// paper's Fig. 9/10 phenomenology depends on, all modeled explicitly:
///
///  * per-task driver-side scheduling cost (serial at the driver, growing
///    with the cluster size per the SchedulerModel),
///  * a first-wave surcharge — "the scheduling and deserialization time
///    (i.e., the communication cost) of the first wave of tasks outweigh
///    the following waves" — so larger N/m amortizes induced overhead,
///  * executor-memory pressure: when an executor's cached partitions exceed
///    its RAM, "persistent RDDs [are] spilled to the local disk", slowing
///    its tasks — why N/m = 8 underperforms N/m = 4,
///  * driver-serialized broadcast per stage (cost ∝ m).

namespace ipso::spark {

/// Engine tunables beyond the cluster config.
struct SparkEngineParams {
  /// Extra seconds of scheduling + closure/jar deserialization added to
  /// every task of a stage's *first* wave on each executor.
  double first_wave_overhead = 0.8;
  /// Same overhead for later waves (executor reuse makes it much smaller).
  double steady_wave_overhead = 0.05;
  /// Multiplier on task compute time when the executor's cached partitions
  /// spill to disk (2-3x is typical for recomputed / disk-read partitions).
  double spill_slowdown = 2.5;
  /// Fault injection and recovery (sim::FaultModel): per-attempt failure
  /// probability (amplified on spilled executors — the paper: "insufficient
  /// RAM may ... even trigger increased task failure rate, leading to the
  /// rollback to the previous stage"), retry budget with stage rollback on
  /// exhaustion, and speculative execution. Failed attempts and losing
  /// backup copies count as scale-out-induced work.
  sim::FaultModelParams faults{};
};

/// One job instance: the (N, m) pair of the paper.
struct SparkJobConfig {
  std::size_t total_tasks = 1;  ///< N: nominal tasks per stage
  std::size_t executors = 1;    ///< m: parallel degree (= cfg.workers)
  std::uint64_t seed = 1;
};

/// Timestamps of one executed stage (what the Spark event log records).
struct StageMetrics {
  std::string name;
  std::size_t stage_id = 0;
  double submission_time = 0.0;
  double completion_time = 0.0;
  std::size_t tasks = 0;
  std::size_t waves = 0;
  bool spilled = false;
  double broadcast_time = 0.0;
  double dispatch_time = 0.0;  ///< driver-serialized task dispatch (Wo)
  double shuffle_time = 0.0;   ///< stage-output shuffle barrier (Ws)
  std::size_t retries = 0;    ///< failed task attempts that were retried
  bool rolled_back = false;   ///< stage was re-executed after retry exhaustion
  sim::FaultStats faults;     ///< full fault/speculation counters

  /// Stage latency.
  double latency() const noexcept { return completion_time - submission_time; }
};

/// Result of one simulated Spark job.
struct SparkJobResult {
  double makespan = 0.0;
  std::vector<StageMetrics> stages;
  /// IPSO attribution: wp = task compute, ws = serial driver work,
  /// wo = broadcast + scheduling + first-wave + spill excess.
  WorkloadComponents components;
  bool any_spill = false;
  sim::FaultStats faults;  ///< job-wide fault/speculation counters
};

/// Runs Spark-like applications on a simulated cluster.
class SparkEngine {
 public:
  SparkEngine(sim::ClusterConfig cfg, SparkEngineParams params = {});

  /// Runs the app at (N = job.total_tasks, m = job.executors). The engine
  /// overrides the cluster's worker count with `executors`.
  SparkJobResult run(const SparkAppSpec& app, const SparkJobConfig& job);

  /// Sequential execution model: every task of every stage back-to-back on
  /// one executor; no broadcast (data is local), no per-task dispatch, no
  /// cache pressure (one-pass streaming). The Eq. 7 numerator.
  SparkJobResult run_sequential(const SparkAppSpec& app,
                                const SparkJobConfig& job);

  const sim::ClusterConfig& config() const noexcept { return cfg_; }
  const SparkEngineParams& params() const noexcept { return params_; }

 private:
  sim::ClusterConfig cfg_;
  SparkEngineParams params_;
};

}  // namespace ipso::spark
