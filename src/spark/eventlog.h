#pragma once

#include "core/expected.h"
#include "spark/engine.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

/// \file eventlog.h
/// Spark-style JSON event log. The paper extracts stage latencies "by
/// tracing the timestamps for each stage in the Spark Log files, which are
/// available in the JSON format" — this module writes the same kind of log
/// from a simulated run and parses it back, so the analysis pipeline works
/// from logs exactly as the paper's did.

namespace ipso::spark {

/// Serializes a job result as one JSON object per line, mimicking Spark's
/// SparkListenerStageCompleted events:
///   {"Event":"StageCompleted","Stage ID":3,"Stage Name":"map",
///    "Submission Time":12.5,"Completion Time":14.0,"Tasks":64,"Spilled":0}
std::string to_event_log(const SparkJobResult& result);

/// One parsed stage event.
struct StageEvent {
  std::size_t stage_id = 0;
  std::string stage_name;
  double submission_time = 0.0;
  double completion_time = 0.0;
  std::size_t tasks = 0;
  bool spilled = false;

  double latency() const noexcept { return completion_time - submission_time; }
};

/// Parses an event log produced by to_event_log. Tolerant: unknown lines
/// and StageCompleted lines with malformed fields are skipped (real Spark
/// logs interleave dozens of other event kinds), never thrown on.
std::vector<StageEvent> parse_event_log(const std::string& log);

/// Why a strict event-log parse rejected its input.
enum class EventLogError {
  kBadNumber,     ///< a numeric field does not parse as a number
  kMissingField,  ///< a StageCompleted line lacks a required field
};

constexpr const char* to_string(EventLogError e) noexcept {
  switch (e) {
    case EventLogError::kBadNumber: return "malformed numeric field";
    case EventLogError::kMissingField: return "missing required field";
  }
  return "unknown";
}

/// Strict-parse failure: which line (1-based) and why.
struct EventLogIssue {
  std::size_t line = 0;
  EventLogError error = EventLogError::kBadNumber;
  std::string field;  ///< the offending field name

  std::string message() const;
};

/// Strict variant for pipelines that must not silently drop data: unknown
/// event kinds are still skipped (that matches real Spark logs), but a
/// StageCompleted line with a missing or malformed field is an error
/// naming the line and field instead of a half-parsed event.
Expected<std::vector<StageEvent>, EventLogIssue> parse_event_log_strict(
    const std::string& log);

/// Total job latency from a parsed log: last completion - first submission.
/// Returns std::nullopt for a log without stage events.
std::optional<double> job_latency(const std::vector<StageEvent>& events);

/// Speedup from two raw event logs (sequential baseline vs scaled-out run),
/// exactly the paper's methodology: "we extract the execution latencies for
/// all stages from the application's Log file to derive the speedup".
/// Returns std::nullopt when either log lacks stage events or the parallel
/// latency is zero.
std::optional<double> speedup_from_logs(const std::string& sequential_log,
                                        const std::string& parallel_log);

/// Per-stage-name total latency across a parsed log (iterative apps run the
/// same stage many times; the paper sums per stage when attributing time).
std::map<std::string, double> stage_latency_totals(
    const std::vector<StageEvent>& events);

}  // namespace ipso::spark
