#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file stage.h
/// Description of a Spark-like application as a DAG of stages. The paper's
/// Spark case studies (Section V.B) configure a problem size N (nominal
/// tasks per stage) and a parallel degree m (executors); each executor runs
/// N/m tasks per stage in waves. Applications may iterate the stage list
/// (iterative ML) and stages may begin with a driver->executors broadcast.

namespace ipso::spark {

/// One stage of the application.
struct StageSpec {
  std::string name;

  /// CPU ops per task (at the nominal per-task data size).
  double task_ops = 1e8;

  /// Input bytes one task keeps cached in executor memory when the stage's
  /// RDD is persisted (0 = nothing cached).
  double cached_bytes_per_task = 0.0;

  /// Shuffle-write bytes per task sent to the next stage (drives a shuffle
  /// barrier cost at the stage boundary).
  double shuffle_bytes_per_task = 0.0;

  /// Broadcast payload sent from the driver to *every* executor before the
  /// stage's first task can run. The driver uplink serializes the copies,
  /// so the cost is m * bytes / bw: the scale-out-induced workload that
  /// produces the Collaborative Filtering pathology (q ~ n^2, type IVs).
  double broadcast_bytes = 0.0;

  /// Tasks in this stage as a fraction of the nominal N (later stages of a
  /// job often run fewer tasks, e.g. aggregations).
  double task_count_factor = 1.0;
};

/// A Spark application: stages, executed `iterations` times.
struct SparkAppSpec {
  std::string name;
  std::vector<StageSpec> stages;
  std::size_t iterations = 1;

  /// Fraction of eta at n = 1 that is serial driver-side work per job
  /// (collect/aggregate at the driver after the last stage); 0 for pure
  /// map-style apps like Collaborative Filtering (Ws = 0 in the paper).
  double driver_ops_per_job = 0.0;
};

}  // namespace ipso::spark
