#include "spark/eventlog.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace ipso::spark {

namespace {

/// Extracts the raw text after `"key":` in a single-line JSON object.
/// Handles the two value shapes we emit: numbers and quoted strings.
std::optional<std::string> json_field(const std::string& line,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t start = pos + needle.size();
  if (start >= line.size()) return std::nullopt;
  if (line[start] == '"') {
    const auto end = line.find('"', start + 1);
    if (end == std::string::npos) return std::nullopt;
    return line.substr(start + 1, end - start - 1);
  }
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(start, end - start);
}

/// Checked numeric parses: std::stod/stoul throw on garbage, which turned a
/// single corrupt log line into a crash of the whole analysis.
bool parse_double_field(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_size_field(const std::string& s, std::size_t* out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

/// Parses one StageCompleted line. Returns the field name that failed (and
/// sets *bad_number) or an empty string on success; non-stage lines yield
/// success with *is_stage = false.
std::string parse_stage_line(const std::string& line, StageEvent* ev,
                             bool* is_stage, bool* bad_number) {
  *is_stage = false;
  *bad_number = false;
  const auto event = json_field(line, "Event");
  if (!event || *event != "StageCompleted") return {};
  *is_stage = true;
  const auto stage_id = json_field(line, "Stage ID");
  const auto name = json_field(line, "Stage Name");
  const auto submitted = json_field(line, "Submission Time");
  const auto completed = json_field(line, "Completion Time");
  const auto tasks = json_field(line, "Tasks");
  const auto spilled = json_field(line, "Spilled");
  if (!stage_id) return "Stage ID";
  if (!name) return "Stage Name";
  if (!submitted) return "Submission Time";
  if (!completed) return "Completion Time";
  if (!tasks) return "Tasks";
  if (!spilled) return "Spilled";
  *bad_number = true;
  if (!parse_size_field(*stage_id, &ev->stage_id)) return "Stage ID";
  if (!parse_double_field(*submitted, &ev->submission_time)) {
    return "Submission Time";
  }
  if (!parse_double_field(*completed, &ev->completion_time)) {
    return "Completion Time";
  }
  if (!parse_size_field(*tasks, &ev->tasks)) return "Tasks";
  *bad_number = false;
  ev->stage_name = *name;
  ev->spilled = *spilled == "1";
  return {};
}

}  // namespace

std::string to_event_log(const SparkJobResult& result) {
  std::ostringstream os;
  os << std::setprecision(15);
  for (const auto& s : result.stages) {
    os << "{\"Event\":\"StageCompleted\",\"Stage ID\":" << s.stage_id
       << ",\"Stage Name\":\"" << s.name
       << "\",\"Submission Time\":" << s.submission_time
       << ",\"Completion Time\":" << s.completion_time
       << ",\"Tasks\":" << s.tasks << ",\"Spilled\":" << (s.spilled ? 1 : 0)
       << "}\n";
  }
  return os.str();
}

std::vector<StageEvent> parse_event_log(const std::string& log) {
  std::vector<StageEvent> events;
  std::istringstream is(log);
  std::string line;
  while (std::getline(is, line)) {
    StageEvent ev;
    bool is_stage = false;
    bool bad_number = false;
    if (parse_stage_line(line, &ev, &is_stage, &bad_number).empty() &&
        is_stage) {
      events.push_back(std::move(ev));
    }
  }
  return events;
}

std::string EventLogIssue::message() const {
  return "line " + std::to_string(line) + ": " + to_string(error) + " '" +
         field + "'";
}

Expected<std::vector<StageEvent>, EventLogIssue> parse_event_log_strict(
    const std::string& log) {
  std::vector<StageEvent> events;
  std::istringstream is(log);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    StageEvent ev;
    bool is_stage = false;
    bool bad_number = false;
    const std::string field =
        parse_stage_line(line, &ev, &is_stage, &bad_number);
    if (!field.empty()) {
      return EventLogIssue{lineno,
                           bad_number ? EventLogError::kBadNumber
                                      : EventLogError::kMissingField,
                           field};
    }
    if (is_stage) events.push_back(std::move(ev));
  }
  return events;
}

std::optional<double> job_latency(const std::vector<StageEvent>& events) {
  if (events.empty()) return std::nullopt;
  double first = events.front().submission_time;
  double last = events.front().completion_time;
  for (const auto& ev : events) {
    first = std::min(first, ev.submission_time);
    last = std::max(last, ev.completion_time);
  }
  return last - first;
}

std::optional<double> speedup_from_logs(const std::string& sequential_log,
                                        const std::string& parallel_log) {
  const auto seq = job_latency(parse_event_log(sequential_log));
  const auto par = job_latency(parse_event_log(parallel_log));
  if (!seq || !par || *par <= 0.0) return std::nullopt;
  return *seq / *par;
}

std::map<std::string, double> stage_latency_totals(
    const std::vector<StageEvent>& events) {
  std::map<std::string, double> totals;
  for (const auto& ev : events) totals[ev.stage_name] += ev.latency();
  return totals;
}

}  // namespace ipso::spark
