#include "spark/eventlog.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ipso::spark {

namespace {

/// Extracts the raw text after `"key":` in a single-line JSON object.
/// Handles the two value shapes we emit: numbers and quoted strings.
std::optional<std::string> json_field(const std::string& line,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t start = pos + needle.size();
  if (start >= line.size()) return std::nullopt;
  if (line[start] == '"') {
    const auto end = line.find('"', start + 1);
    if (end == std::string::npos) return std::nullopt;
    return line.substr(start + 1, end - start - 1);
  }
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(start, end - start);
}

}  // namespace

std::string to_event_log(const SparkJobResult& result) {
  std::ostringstream os;
  os << std::setprecision(15);
  for (const auto& s : result.stages) {
    os << "{\"Event\":\"StageCompleted\",\"Stage ID\":" << s.stage_id
       << ",\"Stage Name\":\"" << s.name
       << "\",\"Submission Time\":" << s.submission_time
       << ",\"Completion Time\":" << s.completion_time
       << ",\"Tasks\":" << s.tasks << ",\"Spilled\":" << (s.spilled ? 1 : 0)
       << "}\n";
  }
  return os.str();
}

std::vector<StageEvent> parse_event_log(const std::string& log) {
  std::vector<StageEvent> events;
  std::istringstream is(log);
  std::string line;
  while (std::getline(is, line)) {
    const auto event = json_field(line, "Event");
    if (!event || *event != "StageCompleted") continue;
    StageEvent ev;
    if (const auto v = json_field(line, "Stage ID")) {
      ev.stage_id = static_cast<std::size_t>(std::stoul(*v));
    }
    if (const auto v = json_field(line, "Stage Name")) ev.stage_name = *v;
    if (const auto v = json_field(line, "Submission Time")) {
      ev.submission_time = std::stod(*v);
    }
    if (const auto v = json_field(line, "Completion Time")) {
      ev.completion_time = std::stod(*v);
    }
    if (const auto v = json_field(line, "Tasks")) {
      ev.tasks = static_cast<std::size_t>(std::stoul(*v));
    }
    if (const auto v = json_field(line, "Spilled")) ev.spilled = *v == "1";
    events.push_back(std::move(ev));
  }
  return events;
}

std::optional<double> job_latency(const std::vector<StageEvent>& events) {
  if (events.empty()) return std::nullopt;
  double first = events.front().submission_time;
  double last = events.front().completion_time;
  for (const auto& ev : events) {
    first = std::min(first, ev.submission_time);
    last = std::max(last, ev.completion_time);
  }
  return last - first;
}

std::optional<double> speedup_from_logs(const std::string& sequential_log,
                                        const std::string& parallel_log) {
  const auto seq = job_latency(parse_event_log(sequential_log));
  const auto par = job_latency(parse_event_log(parallel_log));
  if (!seq || !par || *par <= 0.0) return std::nullopt;
  return *seq / *par;
}

std::map<std::string, double> stage_latency_totals(
    const std::vector<StageEvent>& events) {
  std::map<std::string, double> totals;
  for (const auto& ev : events) totals[ev.stage_name] += ev.latency();
  return totals;
}

}  // namespace ipso::spark
