#include "sim/scheduler.h"

#include <cmath>

namespace ipso::sim {

double SchedulerModel::per_task_cost(std::size_t n) const noexcept {
  return base_cost_seconds +
         contention_coeff *
             std::pow(static_cast<double>(n), contention_exponent);
}

double SchedulerModel::dispatch_finish(std::size_t k,
                                       std::size_t n) const noexcept {
  return static_cast<double>(k + 1) * per_task_cost(n);
}

std::vector<double> SchedulerModel::dispatch_offsets(std::size_t count,
                                                     std::size_t n) const {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) out.push_back(dispatch_finish(k, n));
  return out;
}

double SchedulerModel::total_dispatch_time(std::size_t count,
                                           std::size_t n) const noexcept {
  return static_cast<double>(count) * per_task_cost(n);
}

}  // namespace ipso::sim
