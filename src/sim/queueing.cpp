#include "sim/queueing.h"

#include <algorithm>
#include <stdexcept>

namespace ipso::sim {

double mm1_wait(double lambda, double mu) {
  if (lambda < 0.0 || mu <= 0.0 || lambda >= mu) {
    throw std::invalid_argument("mm1_wait: need 0 <= lambda < mu");
  }
  const double rho = lambda / mu;
  return rho / (mu * (1.0 - rho));
}

double md1_wait(double lambda, double mu) {
  // Pollaczek-Khinchine with zero service variance: half the M/M/1 wait.
  return 0.5 * mm1_wait(lambda, mu);
}

double mm1_in_system(double lambda, double mu) {
  if (lambda < 0.0 || mu <= 0.0 || lambda >= mu) {
    throw std::invalid_argument("mm1_in_system: need 0 <= lambda < mu");
  }
  const double rho = lambda / mu;
  return rho / (1.0 - rho);
}

SharedResourceContention::SharedResourceContention(double phi,
                                                   double capacity)
    : phi_(phi), capacity_(capacity) {
  if (phi_ < 0.0 || phi_ >= 1.0) {
    throw std::invalid_argument("SharedResourceContention: phi in [0, 1)");
  }
  if (capacity_ <= 0.0) {
    throw std::invalid_argument(
        "SharedResourceContention: capacity must be positive");
  }
}

double SharedResourceContention::utilization(std::size_t n) const noexcept {
  const double rho = static_cast<double>(n) * phi_ / capacity_;
  return std::min(rho, kSaturation);
}

double SharedResourceContention::slowdown(std::size_t n) const noexcept {
  if (phi_ == 0.0) return 1.0;
  const double rho = utilization(n);
  return (1.0 - phi_) + phi_ / (1.0 - rho);
}

double SharedResourceContention::saturation_n() const noexcept {
  if (phi_ == 0.0) return 1e300;
  return capacity_ / phi_;
}

}  // namespace ipso::sim
