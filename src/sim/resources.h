#pragma once

#include <cstddef>

/// \file resources.h
/// Resource cost models for the simulated cluster: CPU, memory (with
/// spill-to-disk), disk and network. These are deliberately simple,
/// deterministic throughput models — IPSO's scaling factors depend on how
/// workload components *grow* with n, not on absolute hardware speeds
/// (paper Section III: "idealized scaling models ... are generally adopted").

namespace ipso::sim {

/// CPU: converts abstract work units ("ops") to seconds.
struct CpuModel {
  double ops_per_second = 1e8;

  /// Seconds to execute `ops` work units.
  double time_for(double ops) const noexcept { return ops / ops_per_second; }
};

/// Disk: sequential bandwidth; used for spill traffic when memory overflows.
struct DiskModel {
  double bytes_per_second = 120e6;  ///< ~HDD-class EMR local disk

  /// Seconds to stream `bytes` through the disk once.
  double time_for(double bytes) const noexcept {
    return bytes / bytes_per_second;
  }
};

/// Memory at one processing unit. Tracks capacity; overflow_bytes() tells
/// the caller how much of a working set must spill to disk — the mechanism
/// behind TeraSort's step-wise IN(n) (paper Fig. 5).
struct MemoryModel {
  double capacity_bytes = 2e9;  ///< paper: reducer memory ~2 GB

  /// Portion of `working_set` that does not fit and must be spilled.
  double overflow_bytes(double working_set) const noexcept {
    return working_set > capacity_bytes ? working_set - capacity_bytes : 0.0;
  }

  /// True when the working set exceeds memory.
  bool overflows(double working_set) const noexcept {
    return working_set > capacity_bytes;
  }
};

/// Network: per-link bandwidth plus a TCP-incast penalty when many senders
/// converge on one receiver (paper Section II cites incast as a known source
/// of scale-out-induced workload).
struct NetworkModel {
  double bytes_per_second = 56.25e6;  ///< 450 Mb/s, the paper's EMR floor
  double latency_seconds = 2e-4;      ///< per-transfer setup latency
  /// Extra service time fraction per concurrent sender beyond the first;
  /// 0 disables incast modeling.
  double incast_penalty_per_sender = 0.0;

  /// Seconds for one point-to-point transfer of `bytes` with `senders`
  /// concurrent flows into the same receiver (senders >= 1).
  double transfer_time(double bytes, std::size_t senders = 1) const noexcept {
    const double penalty =
        1.0 + incast_penalty_per_sender *
                  static_cast<double>(senders > 0 ? senders - 1 : 0);
    return latency_seconds + bytes * penalty / bytes_per_second;
  }

  /// Seconds for a master-serialized broadcast of `bytes` to `receivers`
  /// nodes: the master's uplink sends each copy in turn. This linear-in-n
  /// cost is what drives the Collaborative Filtering pathology (q ~ n^2).
  double broadcast_time(double bytes, std::size_t receivers) const noexcept {
    return static_cast<double>(receivers) *
           (latency_seconds + bytes / bytes_per_second);
  }
};

}  // namespace ipso::sim
