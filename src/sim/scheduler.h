#pragma once

#include <cstddef>
#include <vector>

/// \file scheduler.h
/// Centralized job scheduler model. Popular frameworks dispatch tasks from a
/// single master; the paper (citing Canary [7]) notes the task scheduling
/// rate can grow quadratically with n and become the bottleneck. The model
/// charges a serial per-task dispatch cost at the master:
///
///   dispatch cost of one task = base + contention · n^exponent
///
/// so dispatching all n first-wave tasks costs n·base + contention·n^(1+e):
/// with e > 0 this is a superlinear collective overhead (IVt/IVs driver).

namespace ipso::sim {

/// Scheduler cost parameters.
struct SchedulerModel {
  double base_cost_seconds = 5e-3;     ///< per-task dispatch latency
  double contention_coeff = 0.0;       ///< extra cost scaling with cluster size
  double contention_exponent = 1.0;    ///< n-exponent of the contention term
  double init_seconds = 1.0;           ///< one-off execution environment init

  /// Serial cost to dispatch one task when the cluster has n workers.
  double per_task_cost(std::size_t n) const noexcept;

  /// Time at which the k-th of `count` tasks (0-based) finishes dispatching,
  /// measured from the start of the dispatch phase (after init).
  double dispatch_finish(std::size_t k, std::size_t n) const noexcept;

  /// Dispatch completion offsets for `count` tasks on an n-worker cluster.
  std::vector<double> dispatch_offsets(std::size_t count,
                                       std::size_t n) const;

  /// Total serial scheduling time for `count` tasks (excluding init).
  double total_dispatch_time(std::size_t count, std::size_t n) const noexcept;
};

}  // namespace ipso::sim
