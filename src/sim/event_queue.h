#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

/// \file event_queue.h
/// Minimal discrete-event simulation core. Time is a double in simulated
/// seconds. Events are closures executed in (time, insertion-order) order,
/// so simultaneous events are deterministic.

namespace ipso::sim {

/// Discrete-event simulation driver.
class Simulation {
 public:
  using Action = std::function<void()>;

  /// Current simulated time (seconds).
  double now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` seconds from now (delay >= 0).
  void schedule(double delay, Action action);

  /// Schedules `action` at an absolute time (>= now()).
  void schedule_at(double time, Action action);

  /// Runs events until the queue is empty. Returns the final time.
  double run();

  /// Runs events up to and including `until`; later events stay queued.
  double run_until(double until);

  /// Number of events executed so far.
  std::uint64_t executed() const noexcept { return executed_; }

  /// True when no events are pending.
  bool idle() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  ///< ties broken by insertion order
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ipso::sim
