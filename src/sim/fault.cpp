#include "sim/fault.h"

#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace ipso::sim {

namespace {

/// Hash-combines one value into a running 64-bit state (SplitMix64 over a
/// boost-style combiner). The chain (seed, stage, task, attempt) therefore
/// yields an independent, reproducible draw per attempt.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  return stats::SplitMix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) +
                                (h >> 2)))
      .next();
}

/// Hash to uniform double in [0, 1), same mantissa construction as
/// Rng::uniform so the draw quality matches the main generator.
double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Backup attempts draw from a disjoint attempt-id range so a task's backup
/// copy never replays the original copy's failure schedule.
constexpr std::uint64_t kBackupAttemptBase = std::uint64_t{1} << 32;

}  // namespace

void FaultModelParams::validate() const {
  if (task_failure_prob < 0.0 || task_failure_prob >= 1.0) {
    throw std::invalid_argument("FaultModelParams: task_failure_prob in [0,1)");
  }
  if (spill_failure_multiplier < 1.0) {
    throw std::invalid_argument(
        "FaultModelParams: spill_failure_multiplier must be >= 1");
  }
  if (speculation_fraction < 0.0 || speculation_fraction > 1.0) {
    throw std::invalid_argument(
        "FaultModelParams: speculation_fraction in [0,1]");
  }
}

FaultModel::FaultModel(FaultModelParams params, std::uint64_t job_seed)
    : params_(params), seed_(mix(0x9044f6f567891234ULL, job_seed)) {
  params_.validate();
}

double FaultModel::failure_prob(bool spilled) const noexcept {
  const double p =
      params_.task_failure_prob *
      (spilled ? params_.spill_failure_multiplier : 1.0);
  // The multiplier may push the per-attempt probability to (or past) 1;
  // clamp just below so a success draw remains possible in expectation
  // bookkeeping, while retry exhaustion still dominates.
  return std::min(p, 0.999999);
}

bool FaultModel::attempt_fails(std::uint64_t stage, std::uint64_t task,
                               std::uint64_t attempt,
                               bool spilled) const noexcept {
  const double p = failure_prob(spilled);
  if (p <= 0.0) return false;
  const std::uint64_t h = mix(mix(mix(seed_, stage), task), attempt);
  return to_unit(h) < p;
}

stats::Rng FaultModel::attempt_rng(std::uint64_t stage, std::uint64_t task,
                                   std::uint64_t salt) const noexcept {
  return stats::Rng(mix(mix(mix(seed_, stage), task), salt));
}

TaskFaultOutcome FaultModel::run_task(double attempt_duration,
                                      std::uint64_t stage, std::uint64_t task,
                                      bool spilled) const noexcept {
  TaskFaultOutcome out;
  out.clean = attempt_duration;
  out.duration = attempt_duration;
  while (out.failed_attempts < params_.max_task_retries &&
         attempt_fails(stage, task, out.failed_attempts, spilled)) {
    out.duration += attempt_duration;
    ++out.failed_attempts;
  }
  if (out.failed_attempts == params_.max_task_retries &&
      params_.max_task_retries > 0 &&
      attempt_fails(stage, task, out.failed_attempts, spilled)) {
    // Budget exhausted: the stage rolls back once and the task is then
    // forced through (the engine charges the rollback).
    out.exhausted = true;
  }
  out.busy = out.duration;
  return out;
}

void FaultModel::apply_speculation(
    std::span<TaskFaultOutcome> cohort, std::uint64_t stage,
    std::span<const std::uint64_t> task_ids, bool spilled,
    const std::function<double(std::size_t)>& backup_duration) const noexcept {
  if (!params_.speculation || cohort.size() < 2) return;
  const std::size_t size = cohort.size();
  std::size_t count = static_cast<std::size_t>(
      params_.speculation_fraction * static_cast<double>(size));
  count = std::min(count, size - 1);
  if (count == 0) return;

  // Cutoff: the largest duration *not* in the slowest-`count` set. Backups
  // launch when the scheduler notices a task still running past the cutoff.
  std::vector<double> durations(size);
  for (std::size_t i = 0; i < size; ++i) durations[i] = cohort[i].duration;
  std::nth_element(durations.begin(), durations.begin() + (size - count - 1),
                   durations.end());
  const double cutoff = durations[size - count - 1];

  for (std::size_t i = 0; i < size; ++i) {
    TaskFaultOutcome& t = cohort[i];
    if (t.duration <= cutoff) continue;
    const std::uint64_t task = task_ids[i];
    // The backup copy is a fresh attempt chain over disjoint draw ids.
    double backup_wall = backup_duration(i);
    std::uint64_t attempt = kBackupAttemptBase;
    std::size_t fails = 0;
    while (fails < params_.max_task_retries &&
           attempt_fails(stage, task, attempt++, spilled)) {
      backup_wall += backup_duration(i);
      ++fails;
    }
    t.speculated = true;
    const double backup_end = cutoff + backup_wall;
    if (backup_end < t.duration) {
      // Backup wins: the original is killed at the backup's finish, so the
      // original's retry chain (and any pending rollback) never completes.
      t.backup_won = true;
      t.exhausted = false;
      t.busy = backup_end + backup_wall;
      t.duration = backup_end;
    } else {
      // Original wins: the backup is killed at the original's finish.
      t.busy += std::max(0.0, t.duration - cutoff);
    }
  }
}

void FaultModel::accumulate(std::span<const TaskFaultOutcome> cohort,
                            FaultStats* stats) noexcept {
  std::uint64_t failed = 0, speculated = 0, wins = 0;
  double wasted = 0.0;
  for (const TaskFaultOutcome& t : cohort) {
    stats->failed_attempts += t.failed_attempts;
    stats->speculative_copies += t.speculated ? 1 : 0;
    stats->backup_wins += t.backup_won ? 1 : 0;
    stats->wasted_seconds += t.busy - t.clean;
    failed += t.failed_attempts;
    speculated += t.speculated ? 1 : 0;
    wins += t.backup_won ? 1 : 0;
    wasted += t.busy - t.clean;
  }
  if (obs::enabled()) {
    static const obs::Counter c_failed("sim.fault.failed_attempts");
    static const obs::Counter c_spec("sim.fault.speculative_copies");
    static const obs::Counter c_wins("sim.fault.backup_wins");
    static const obs::Counter c_wasted("sim.fault.wasted_seconds");
    c_failed.add(static_cast<double>(failed));
    c_spec.add(static_cast<double>(speculated));
    c_wins.add(static_cast<double>(wins));
    c_wasted.add(wasted);
  }
}

}  // namespace ipso::sim
