#include "sim/cluster.h"

namespace ipso::sim {

ClusterConfig default_emr_cluster(std::size_t workers) {
  ClusterConfig cfg;
  cfg.workers = workers;
  cfg.worker_cpu.ops_per_second = 1e8;
  cfg.merge_cpu.ops_per_second = 1e8;
  cfg.worker_memory.capacity_bytes = 8e9;    // m4.large: 8 GB
  cfg.reducer_memory.capacity_bytes = 2e9;   // paper: ~2 GB reducer heap
  cfg.disk.bytes_per_second = 120e6;
  cfg.network.bytes_per_second = 56.25e6;    // >= 450 Mb/s per the paper
  cfg.network.latency_seconds = 2e-4;
  cfg.scheduler.base_cost_seconds = 5e-3;
  cfg.scheduler.init_seconds = 1.0;
  cfg.validate();
  return cfg;
}

}  // namespace ipso::sim
