#pragma once

#include "stats/random.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

/// \file fault.h
/// Unified fault-injection and recovery layer shared by the MapReduce and
/// Spark engines. The paper's Wo(n) = (Wp(n)/n)·q(n) is dominated by
/// collective overheads — stragglers (Eq. 8's E[max Tp,i(n)]) and the
/// failure/rollback costs it calls out for memory-constrained Spark
/// ("insufficient RAM may ... even trigger increased task failure rate,
/// leading to the rollback to the previous stage"). This module makes those
/// costs injectable on every engine with one semantics:
///
///  * per-attempt failure probability (optionally amplified on spilled
///    executors),
///  * failure draws that are a pure function of (seed, stage, task, attempt)
///    — no shared RNG stream is consumed, so enabling faults never perturbs
///    straggler draws, and a job's failure schedule is bit-identical at any
///    runner thread count,
///  * a retry budget per task; each failed attempt reruns the task and the
///    wasted time counts as scale-out-induced work (Wo),
///  * stage rollback on budget exhaustion: the whole stage re-executes once,
///  * speculative execution: the slowest tasks of a cohort (a wave or a map
///    phase) get a backup copy launched at the cohort's cutoff quantile;
///    the first finisher wins and the loser's compute is induced work — the
///    classic straggler/fault countermeasure.

namespace ipso::sim {

/// Fault-injection knobs, shared verbatim by both engines (the Spark
/// engine's historical ad-hoc task_failure_prob / spill_failure_multiplier /
/// max_task_retries knobs live here now).
struct FaultModelParams {
  /// Per-attempt task failure probability (0 disables failure injection).
  double task_failure_prob = 0.0;
  /// Failure-probability multiplier for tasks on a spilled executor.
  double spill_failure_multiplier = 4.0;
  /// Retry budget per task; a task that exhausts it triggers one full stage
  /// re-execution (the rollback), after which it is forced through.
  std::size_t max_task_retries = 3;
  /// Speculative execution: launch a backup copy of the slowest tasks.
  bool speculation = false;
  /// Fraction of a cohort considered "slowest" and eligible for a backup
  /// (the classic default mirrors Hadoop/Spark's slow-task detectors).
  double speculation_fraction = 0.25;

  /// Structural validation; throws std::invalid_argument.
  void validate() const;
};

/// Counters describing what the fault machinery did to one stage (or one
/// job); engines embed and aggregate these.
struct FaultStats {
  std::size_t failed_attempts = 0;     ///< task attempts that failed
  std::size_t rollbacks = 0;           ///< stage re-executions triggered
  std::size_t speculative_copies = 0;  ///< backup copies launched
  std::size_t backup_wins = 0;         ///< backups that finished first
  double wasted_seconds = 0.0;  ///< retry + rollback + backup compute (-> Wo)

  void merge(const FaultStats& o) noexcept {
    failed_attempts += o.failed_attempts;
    rollbacks += o.rollbacks;
    speculative_copies += o.speculative_copies;
    backup_wins += o.backup_wins;
    wasted_seconds += o.wasted_seconds;
  }
};

/// Outcome of pushing one task through the retry (+ speculation) machinery.
struct TaskFaultOutcome {
  double clean = 0.0;     ///< single-attempt compute time (no faults)
  double duration = 0.0;  ///< wall time from task start to first success
  double busy = 0.0;      ///< compute consumed (all attempts + backup)
  std::size_t failed_attempts = 0;
  bool exhausted = false;  ///< retry budget spent: stage must roll back
  bool speculated = false;
  bool backup_won = false;
};

/// Deterministic fault injector for one job execution. Cheap to construct
/// (one per engine run); every draw is derived by hashing
/// (job seed, stage, task, attempt), never by consuming a shared stream.
class FaultModel {
 public:
  FaultModel(FaultModelParams params, std::uint64_t job_seed);

  const FaultModelParams& params() const noexcept { return params_; }

  /// True when the model can alter an execution at all (failures enabled or
  /// speculation on). Engines skip the fault path entirely when inactive,
  /// preserving bit-identical no-fault results.
  bool active() const noexcept {
    return params_.task_failure_prob > 0.0 || params_.speculation;
  }

  /// Deterministic failure draw for one attempt of one task.
  bool attempt_fails(std::uint64_t stage, std::uint64_t task,
                     std::uint64_t attempt, bool spilled) const noexcept;

  /// A deterministic per-(stage, task, salt) generator for auxiliary draws
  /// (e.g. the straggler factor of a speculative backup copy).
  stats::Rng attempt_rng(std::uint64_t stage, std::uint64_t task,
                         std::uint64_t salt) const noexcept;

  /// Runs one task: the initial attempt plus up to max_task_retries retries.
  /// Each failed attempt costs a full `attempt_duration` of wall and busy
  /// time. If the final retry's draw also fails the task is forced through
  /// but marked `exhausted` (the engine rolls the stage back once).
  TaskFaultOutcome run_task(double attempt_duration, std::uint64_t stage,
                            std::uint64_t task, bool spilled) const noexcept;

  /// Speculative execution over one cohort (a Spark wave or a MapReduce map
  /// phase). The slowest floor(speculation_fraction · size) tasks — those
  /// strictly above the cohort's cutoff duration — get a backup copy
  /// launched at the cutoff time. `backup_duration(i)` supplies the backup's
  /// clean compute time for cohort index i (the engine redraws the straggler
  /// factor from attempt_rng); the backup then runs through the same failure
  /// machinery. The first finisher wins: the loser's compute is added to
  /// `busy` as waste, and a task rescued by its backup before the retry
  /// budget ran out clears `exhausted`.
  /// `task_ids[i]` maps cohort indices to job-wide task ids for the draws.
  void apply_speculation(
      std::span<TaskFaultOutcome> cohort, std::uint64_t stage,
      std::span<const std::uint64_t> task_ids, bool spilled,
      const std::function<double(std::size_t)>& backup_duration)
      const noexcept;

  /// Convenience: accumulates a cohort's outcome counters into `stats`
  /// (waste = busy beyond each task's winning-attempt duration is what the
  /// engines charge to Wo).
  static void accumulate(std::span<const TaskFaultOutcome> cohort,
                         FaultStats* stats) noexcept;

 private:
  double failure_prob(bool spilled) const noexcept;

  FaultModelParams params_;
  std::uint64_t seed_;
};

}  // namespace ipso::sim
