#pragma once

#include "sim/queueing.h"
#include "sim/resources.h"
#include "sim/scheduler.h"
#include "sim/straggler.h"

#include <cstddef>
#include <stdexcept>

/// \file cluster.h
/// The simulated homogeneous Split-Merge cluster of the paper's system model
/// (Section III): n identical worker units for the split phase plus one
/// merge unit, coordinated by a master. Mirrors the paper's EMR testbed
/// (m4.4xlarge master, m4.large workers, one container per unit).

namespace ipso::sim {

/// Static description of the cluster and its resource models.
struct ClusterConfig {
  std::size_t workers = 1;     ///< n: scale-out degree (split-phase units)
  CpuModel worker_cpu{};       ///< worker compute speed
  CpuModel merge_cpu{};        ///< merge-unit compute speed (same by default)
  MemoryModel worker_memory{};   ///< per-worker RAM
  MemoryModel reducer_memory{};  ///< merge-unit RAM (paper: ~2 GB reducer)
  DiskModel disk{};            ///< local disk used for spill traffic
  NetworkModel network{};      ///< interconnect
  SchedulerModel scheduler{};  ///< centralized dispatch costs
  StragglerModel straggler{};  ///< task-duration dispersion (off by default)

  /// Shared-resource contention among parallel tasks (paper's citation [9]:
  /// contention induces an effective serial workload). `contention_phi` is
  /// the fraction of each task's work routed through the shared resource;
  /// 0 disables the model. `contention_capacity` is the resource capacity
  /// in concurrent task-equivalents.
  double contention_phi = 0.0;
  double contention_capacity = 64.0;

  /// Validates structural invariants; throws std::invalid_argument.
  void validate() const {
    if (contention_phi < 0.0 || contention_phi >= 1.0) {
      throw std::invalid_argument("ClusterConfig: contention_phi in [0,1)");
    }
    if (contention_capacity <= 0.0) {
      throw std::invalid_argument(
          "ClusterConfig: contention_capacity must be positive");
    }
    if (workers == 0) {
      throw std::invalid_argument("ClusterConfig: need at least one worker");
    }
    if (worker_cpu.ops_per_second <= 0 || merge_cpu.ops_per_second <= 0) {
      throw std::invalid_argument("ClusterConfig: CPU rate must be positive");
    }
    if (disk.bytes_per_second <= 0 || network.bytes_per_second <= 0) {
      throw std::invalid_argument("ClusterConfig: bandwidth must be positive");
    }
  }
};

/// A paper-faithful default cluster: EMR-like constants, no stragglers,
/// mild constant dispatch cost, 2 GB reducer memory.
ClusterConfig default_emr_cluster(std::size_t workers);

}  // namespace ipso::sim
