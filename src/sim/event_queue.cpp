#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace ipso::sim {

void Simulation::schedule(double delay, Action action) {
  if (delay < 0.0) {
    throw std::invalid_argument("Simulation::schedule: negative delay");
  }
  schedule_at(now_ + delay, std::move(action));
}

void Simulation::schedule_at(double time, Action action) {
  if (time < now_) {
    throw std::invalid_argument("Simulation::schedule_at: time in the past");
  }
  queue_.push({time, seq_++, std::move(action)});
}

double Simulation::run() {
  while (!queue_.empty()) {
    // Move the action out before popping; the action may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.action();
  }
  return now_;
}

double Simulation::run_until(double until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.action();
  }
  if (now_ < until) now_ = until;
  return now_;
}

}  // namespace ipso::sim
