#pragma once

#include <cmath>
#include <map>
#include <string>
#include <vector>

/// \file metrics.h
/// Phase-level timing capture for simulated job executions. The paper's
/// measurement methodology (Section V, "Scaling Prediction") breaks a
/// MapReduce job into four parts — (a) init/scheduling, (b) map, (c)
/// map-to-reduce communication, (d) reduce (shuffle/merge/reduce stages) —
/// and attributes each to Wp, Ws or Wo. PhaseBreakdown is that record.

namespace ipso::sim {

/// Simulated wall-clock durations of one job execution, by phase. All in
/// simulated seconds; phases absent from a given engine stay 0.
struct PhaseBreakdown {
  double init = 0.0;       ///< (a) environment init + job scheduling
  double map = 0.0;        ///< (b) split/map phase (barrier to last task)
  double comm = 0.0;       ///< (c) map->reduce communication / broadcast
  double shuffle = 0.0;    ///< (d1) reducer pulling mapper outputs
  double merge = 0.0;      ///< (d2) merging intermediate results
  double reduce = 0.0;     ///< (d3) final reduce producing the result
  double spill = 0.0;      ///< disk I/O caused by memory overflow (inside d2)

  /// End-to-end job time.
  double total() const noexcept {
    return init + map + comm + shuffle + merge + reduce;
  }

  /// Serial (merge-phase) portion: everything after the map barrier.
  double serial() const noexcept { return shuffle + merge + reduce; }

  /// Quantizes every phase to the given measurement precision (the paper's
  /// testbed measured with 1-second precision; sub-second map phases became
  /// unmeasurable). Returns the quantized copy.
  PhaseBreakdown quantized(double precision) const noexcept;
};

/// Named duration samples for ad-hoc instrumentation of engines.
class Trace {
 public:
  /// Records one sample for `phase`.
  void record(const std::string& phase, double seconds);

  /// Sum of samples for `phase` (0 when absent).
  double total(const std::string& phase) const noexcept;

  /// Number of samples for `phase`.
  std::size_t count(const std::string& phase) const noexcept;

  /// All phase names seen, sorted.
  std::vector<std::string> phases() const;

 private:
  std::map<std::string, std::vector<double>> samples_;
};

}  // namespace ipso::sim
