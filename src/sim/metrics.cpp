#include "sim/metrics.h"

namespace ipso::sim {

namespace {
double quantize(double v, double precision) {
  if (precision <= 0.0) return v;
  return std::round(v / precision) * precision;
}
}  // namespace

PhaseBreakdown PhaseBreakdown::quantized(double precision) const noexcept {
  PhaseBreakdown q;
  q.init = quantize(init, precision);
  q.map = quantize(map, precision);
  q.comm = quantize(comm, precision);
  q.shuffle = quantize(shuffle, precision);
  q.merge = quantize(merge, precision);
  q.reduce = quantize(reduce, precision);
  q.spill = quantize(spill, precision);
  return q;
}

void Trace::record(const std::string& phase, double seconds) {
  samples_[phase].push_back(seconds);
}

double Trace::total(const std::string& phase) const noexcept {
  const auto it = samples_.find(phase);
  if (it == samples_.end()) return 0.0;
  double acc = 0.0;
  for (double s : it->second) acc += s;
  return acc;
}

std::size_t Trace::count(const std::string& phase) const noexcept {
  const auto it = samples_.find(phase);
  return it == samples_.end() ? 0 : it->second.size();
}

std::vector<std::string> Trace::phases() const {
  std::vector<std::string> out;
  out.reserve(samples_.size());
  for (const auto& [name, _] : samples_) out.push_back(name);
  return out;
}

}  // namespace ipso::sim
