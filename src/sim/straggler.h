#pragma once

#include "stats/random.h"

/// \file straggler.h
/// Task-duration dispersion model. The paper formulates IPSO statistically
/// (E[max Tp,i(n)], Eq. 8) precisely to capture stragglers, then argues the
/// deterministic model preserves the qualitative conclusions because task
/// tails are finite. The simulator supports both; the ablation bench compares
/// them.

namespace ipso::sim {

/// Multiplicative task-duration noise: a capped-Pareto draw rescaled to mean
/// 1, matching core::CappedParetoTime (Tp,i = tp · X_i with E[X] = 1, the
/// normalization Eq. 8 assumes). With `normalize_mean` the dispersion is pure:
/// enabling stragglers changes E[max] but not the mean task time, so an
/// ablation isolates the tail effect instead of conflating it with a mean
/// shift. Set `normalize_mean = false` for the historical raw draw in
/// [1, cap] with mean ≈ shape/(shape-1) — a uniform slowdown plus dispersion.
struct StragglerModel {
  bool enabled = false;
  double tail_shape = 3.0;  ///< Pareto shape; smaller = heavier tail
  double cap = 4.0;         ///< max/min slowdown ratio (finite tail, per paper)
  bool normalize_mean = true;  ///< rescale draws so E[factor] = 1

  /// Duration multiplier for one task. Returns exactly 1 when disabled.
  double factor(stats::Rng& rng) const noexcept {
    if (!enabled) return 1.0;
    const double raw = rng.heavy_tail(1.0, tail_shape, cap);
    return normalize_mean ? raw / stats::capped_pareto_mean(tail_shape, cap)
                          : raw;
  }
};

}  // namespace ipso::sim
