#pragma once

#include "stats/random.h"

/// \file straggler.h
/// Task-duration dispersion model. The paper formulates IPSO statistically
/// (E[max Tp,i(n)], Eq. 8) precisely to capture stragglers, then argues the
/// deterministic model preserves the qualitative conclusions because task
/// tails are finite. The simulator supports both; the ablation bench compares
/// them.

namespace ipso::sim {

/// Multiplicative task-duration noise. A task's nominal duration is scaled
/// by a factor >= 1 drawn from a capped heavy-tail distribution.
struct StragglerModel {
  bool enabled = false;
  double tail_shape = 3.0;  ///< Pareto shape; smaller = heavier tail
  double cap = 4.0;         ///< max slowdown factor (finite tail, per paper)

  /// Duration multiplier for one task. Returns exactly 1 when disabled.
  double factor(stats::Rng& rng) const noexcept {
    if (!enabled) return 1.0;
    return rng.heavy_tail(1.0, tail_shape, cap);
  }
};

}  // namespace ipso::sim
