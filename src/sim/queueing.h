#pragma once

#include <cstddef>

/// \file queueing.h
/// Queueing-theoretic contention models. The paper (Section II) cites the
/// queuing-network analysis of [9] (Che & Nguyen): "any resource contention
/// among parallel tasks is guaranteed to induce an effective serial
/// workload, resulting in lower speedup than that predicted by the existing
/// laws". This module provides the standard single-server formulas and a
/// shared-resource contention model that injects exactly that effect into
/// the simulated cluster.

namespace ipso::sim {

/// Mean waiting time (time in queue, excluding service) of an M/M/1 queue
/// with arrival rate `lambda` and service rate `mu` (requires lambda < mu).
double mm1_wait(double lambda, double mu);

/// Mean waiting time of an M/D/1 queue (deterministic service): half the
/// M/M/1 wait by Pollaczek-Khinchine.
double md1_wait(double lambda, double mu);

/// Mean number in system for M/M/1: rho / (1 - rho).
double mm1_in_system(double lambda, double mu);

/// Contention on one shared resource (DFS namenode, shared disk array,
/// memory bus...). Each of the n parallel tasks directs a fraction `phi`
/// of its work through the resource, whose capacity is `capacity`
/// task-equivalents of that work. Under processor sharing the contended
/// portion stretches by 1/(1 - rho) with utilization rho = n·phi/capacity,
/// so one task's slowdown is
///
///   slowdown(n) = (1 - phi) + phi / (1 - rho(n)),  rho < 1.
///
/// As n approaches capacity/phi the slowdown diverges: the resource has
/// become an effective serial workload, the [9] result.
class SharedResourceContention {
 public:
  /// phi in [0, 1); capacity > 0. Throws std::invalid_argument otherwise.
  SharedResourceContention(double phi, double capacity);

  /// Per-task duration multiplier at scale-out degree n (>= 1). When the
  /// offered load reaches `saturation_cap` of capacity the slowdown is
  /// clamped there (a real resource saturates rather than diverges).
  double slowdown(std::size_t n) const noexcept;

  /// Utilization rho(n), clamped to [0, saturation).
  double utilization(std::size_t n) const noexcept;

  /// The scale-out degree at which the resource saturates (rho = 1).
  double saturation_n() const noexcept;

  /// Contended work fraction.
  double phi() const noexcept { return phi_; }

 private:
  static constexpr double kSaturation = 0.98;  ///< rho clamp
  double phi_;
  double capacity_;
};

}  // namespace ipso::sim
