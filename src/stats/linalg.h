#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// \file linalg.h
/// Small dense linear algebra: just enough to solve least-squares normal
/// equations for the polynomial and bivariate-surface fits (the paper fits
/// "matched two-dimensional surfaces as functions of N and m based on
/// nonlinear regression" for Figs. 9-10).

namespace ipso::stats {

/// Dense row-major matrix.
class Matrix {
 public:
  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  /// Element access.
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Transpose.
  Matrix transposed() const;

  /// Matrix product (cols must match other.rows).
  Matrix operator*(const Matrix& other) const;

  /// Matrix-vector product (vector length must equal cols).
  std::vector<double> operator*(std::span<const double> v) const;

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting. A must be
/// square and nonsingular (throws std::invalid_argument otherwise).
std::vector<double> solve_linear_system(Matrix a, std::vector<double> b);

/// Linear least squares: minimizes |X beta - y|^2 via the normal equations
/// X^T X beta = X^T y. X has one row per observation.
std::vector<double> least_squares(const Matrix& x, std::span<const double> y);

/// Polynomial fit y = c0 + c1 x + ... + c_deg x^deg; returns deg+1
/// coefficients, constant first. Requires more points than coefficients.
std::vector<double> polyfit(std::span<const double> xs,
                            std::span<const double> ys, std::size_t degree);

/// Evaluates a polynomial with coefficients constant-first.
double polyval(std::span<const double> coeffs, double x) noexcept;

}  // namespace ipso::stats
