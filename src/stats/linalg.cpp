#include "stats/linalg.h"

#include <cmath>
#include <stdexcept>

namespace ipso::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Matrix: zero dimension");
  }
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = at(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += v * other.at(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::operator*: vector length mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out[r] += at(r, c) * v[c];
  }
  return out;
}

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_linear_system: shape mismatch");
  }
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-12) {
      throw std::invalid_argument("solve_linear_system: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
      }
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a.at(i, c) * x[c];
    x[i] = acc / a.at(i, i);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& x, std::span<const double> y) {
  if (y.size() != x.rows()) {
    throw std::invalid_argument("least_squares: y length mismatch");
  }
  if (x.rows() < x.cols()) {
    throw std::invalid_argument("least_squares: underdetermined system");
  }
  const Matrix xt = x.transposed();
  const Matrix xtx = xt * x;
  const std::vector<double> xty = xt * y;
  return solve_linear_system(xtx, xty);
}

std::vector<double> polyfit(std::span<const double> xs,
                            std::span<const double> ys, std::size_t degree) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("polyfit: xs/ys length mismatch");
  }
  if (xs.size() < degree + 1) {
    throw std::invalid_argument("polyfit: need > degree points");
  }
  Matrix vandermonde(xs.size(), degree + 1);
  for (std::size_t r = 0; r < xs.size(); ++r) {
    double p = 1.0;
    for (std::size_t c = 0; c <= degree; ++c) {
      vandermonde.at(r, c) = p;
      p *= xs[r];
    }
  }
  return least_squares(vandermonde, ys);
}

double polyval(std::span<const double> coeffs, double x) noexcept {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

}  // namespace ipso::stats
