#include "stats/nonlinear.h"

#include "stats/regression.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ipso::stats {

namespace {

/// One vertex of the simplex: parameters plus cached objective value.
struct Vertex {
  std::vector<double> x;
  double f = 0.0;
};

std::vector<double> weighted_sum(const std::vector<double>& a, double wa,
                                 const std::vector<double>& b, double wb) {
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = wa * a[i] + wb * b[i];
  return out;
}

}  // namespace

MinimizeResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& opts) {
  const std::size_t dim = x0.size();
  if (dim == 0) throw std::invalid_argument("nelder_mead: empty start point");

  // Standard coefficients: reflection, expansion, contraction, shrink.
  constexpr double kAlpha = 1.0, kGamma = 2.0, kRho = 0.5, kSigma = 0.5;

  std::vector<Vertex> simplex(dim + 1);
  simplex[0] = {x0, f(x0)};
  for (std::size_t i = 0; i < dim; ++i) {
    std::vector<double> xi = x0;
    const double step =
        xi[i] != 0.0 ? opts.initial_step * xi[i] : opts.initial_step;
    xi[i] += step;
    simplex[i + 1] = {xi, f(xi)};
  }

  MinimizeResult result;
  for (std::size_t iter = 0; iter < opts.max_iters; ++iter) {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });

    const double spread = std::abs(simplex.back().f - simplex.front().f);
    if (spread < opts.tolerance) {
      result.converged = true;
      result.iters = iter;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(dim, 0.0);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < dim; ++j) centroid[j] += simplex[i].x[j];
    }
    for (double& c : centroid) c /= static_cast<double>(dim);

    Vertex& worst = simplex.back();
    const auto xr = weighted_sum(centroid, 1.0 + kAlpha, worst.x, -kAlpha);
    const double fr = f(xr);

    if (fr < simplex.front().f) {
      // Try to expand further in the same direction.
      const auto xe = weighted_sum(centroid, 1.0 - kGamma, xr, kGamma);
      const double fe = f(xe);
      worst = fe < fr ? Vertex{xe, fe} : Vertex{xr, fr};
    } else if (fr < simplex[dim - 1].f) {
      worst = {xr, fr};
    } else {
      // Contract toward the centroid.
      const auto xc = weighted_sum(centroid, 1.0 - kRho, worst.x, kRho);
      const double fc = f(xc);
      if (fc < worst.f) {
        worst = {xc, fc};
      } else {
        // Shrink everything toward the best vertex.
        for (std::size_t i = 1; i <= dim; ++i) {
          simplex[i].x =
              weighted_sum(simplex[0].x, 1.0 - kSigma, simplex[i].x, kSigma);
          simplex[i].f = f(simplex[i].x);
        }
      }
    }
    result.iters = iter + 1;
  }

  std::sort(simplex.begin(), simplex.end(),
            [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
  result.params = simplex.front().x;
  result.value = simplex.front().f;
  return result;
}

MinimizeResult fit_curve(
    const Series& s,
    const std::function<double(const std::vector<double>&, double)>& model,
    std::vector<double> initial, const NelderMeadOptions& opts) {
  auto objective = [&](const std::vector<double>& p) {
    double acc = 0.0;
    for (const auto& pt : s) {
      const double r = pt.y - model(p, pt.x);
      acc += r * r;
    }
    return acc;
  };
  return nelder_mead(objective, std::move(initial), opts);
}

HyperbolicFit fit_hyperbolic(const Series& s) {
  Series inv("1/x of " + s.name());
  for (const auto& p : s) {
    if (p.x > 0.0) inv.add(1.0 / p.x, p.y);
  }
  if (inv.size() < 2) {
    throw std::invalid_argument("fit_hyperbolic: need >= 2 positive-x points");
  }
  const LinearFit lf = fit_linear(inv);
  HyperbolicFit hf;
  hf.a = lf.slope;
  hf.c = lf.intercept;
  hf.r_squared = r_squared(s, hf);
  return hf;
}

}  // namespace ipso::stats
