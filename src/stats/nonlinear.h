#pragma once

#include "stats/series.h"

#include <functional>
#include <vector>

/// \file nonlinear.h
/// Derivative-free nonlinear least squares (Nelder-Mead simplex). Used to fit
/// the Collaborative Filtering timing model E[max Tp,i(n)] = a/n + c (Fig. 8
/// of the paper) and any other non-power-law curve the experiments need.

namespace ipso::stats {

/// Options for the Nelder-Mead minimizer.
struct NelderMeadOptions {
  std::size_t max_iters = 2000;   ///< iteration cap
  double tolerance = 1e-10;       ///< simplex spread convergence threshold
  double initial_step = 0.5;      ///< relative size of the initial simplex
};

/// Result of a minimization.
struct MinimizeResult {
  std::vector<double> params;  ///< best parameter vector found
  double value = 0.0;          ///< objective at `params`
  std::size_t iters = 0;       ///< iterations used
  bool converged = false;      ///< true when the spread fell under tolerance
};

/// Minimizes `f` starting from `x0` using Nelder-Mead. `f` must accept a
/// parameter vector of the same length as `x0`.
MinimizeResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& opts = {});

/// Least-squares curve fit: minimizes sum_i (y_i - model(params, x_i))^2 over
/// the series. Returns the best parameters (same length as `initial`).
MinimizeResult fit_curve(
    const Series& s,
    const std::function<double(const std::vector<double>&, double)>& model,
    std::vector<double> initial, const NelderMeadOptions& opts = {});

/// Fit of the hyperbolic timing model y = a/x + c used for the CF case study.
struct HyperbolicFit {
  double a = 0.0;  ///< 1/x coefficient
  double c = 0.0;  ///< constant floor
  double r_squared = 0.0;

  /// Evaluates the fitted curve.
  double operator()(double x) const noexcept { return a / x + c; }
};

/// Fits y = a/x + c (requires >= 2 points with distinct positive x). This is
/// linear in (1/x) so it reduces to OLS; exposed for convenience.
HyperbolicFit fit_hyperbolic(const Series& s);

}  // namespace ipso::stats
