#include "stats/regression.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ipso::stats {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("fit_linear: xs/ys size mismatch");
  }
  const std::size_t n = xs.size();
  if (n < 2) throw std::invalid_argument("fit_linear: need >= 2 points");

  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw std::invalid_argument("fit_linear: degenerate x");

  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  if (syy == 0.0) {
    f.r_squared = 1.0;
  } else {
    f.r_squared = (sxy * sxy) / (sxx * syy);
  }
  if (n > 2) {
    // Residual variance and the classical OLS standard errors.
    double sse_acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = ys[i] - f(xs[i]);
      sse_acc += r * r;
    }
    const double sigma2 = sse_acc / static_cast<double>(n - 2);
    f.slope_stderr = std::sqrt(sigma2 / sxx);
    f.intercept_stderr =
        std::sqrt(sigma2 * (1.0 / static_cast<double>(n) + mx * mx / sxx));
  }
  return f;
}

LinearFit fit_linear(const Series& s) {
  const auto xs = s.xs();
  const auto ys = s.ys();
  return fit_linear(xs, ys);
}

double PowerFit::operator()(double x) const noexcept {
  return coeff * std::pow(x, exponent);
}

PowerFit fit_power(const Series& s) {
  Series logs("log " + s.name());
  for (const auto& p : s) {
    if (p.x > 0.0 && p.y > 0.0) logs.add(std::log(p.x), std::log(p.y));
  }
  if (logs.size() < 2) {
    throw std::invalid_argument("fit_power: need >= 2 positive points");
  }
  const LinearFit lf = fit_linear(logs);
  PowerFit pf;
  pf.exponent = lf.slope;
  pf.coeff = std::exp(lf.intercept);
  pf.r_squared = lf.r_squared;
  pf.exponent_stderr = lf.slope_stderr;
  return pf;
}

bool SegmentedFit::has_breakpoint(double min_slope_ratio) const noexcept {
  const double a = std::abs(left.slope);
  const double b = std::abs(right.slope);
  if (a == 0.0 && b == 0.0) {
    // Two flats: a breakpoint exists only if the levels jump.
    return std::abs(right.intercept - left.intercept) >
           0.05 * std::max(1.0, std::abs(left.intercept));
  }
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  if (lo == 0.0) return true;
  if (hi / lo >= min_slope_ratio) return true;
  // Same slope but a level jump at the knot also counts as step-wise.
  const double jump = std::abs(right(knot) - left(knot));
  return jump > 0.1 * std::max(1.0, std::abs(left(knot)));
}

SegmentedFit fit_segmented(const Series& s, std::size_t min_seg) {
  if (min_seg < 2) min_seg = 2;
  if (s.size() < 2 * min_seg) {
    throw std::invalid_argument("fit_segmented: too few points");
  }
  SegmentedFit best;
  best.sse = std::numeric_limits<double>::infinity();
  const auto xs = s.xs();
  const auto ys = s.ys();
  for (std::size_t split = min_seg; split + min_seg <= s.size(); ++split) {
    const std::span<const double> lx(xs.data(), split);
    const std::span<const double> ly(ys.data(), split);
    const std::span<const double> rx(xs.data() + split, xs.size() - split);
    const std::span<const double> ry(ys.data() + split, ys.size() - split);
    LinearFit lf, rf;
    try {
      lf = fit_linear(lx, ly);
      rf = fit_linear(rx, ry);
    } catch (const std::invalid_argument&) {
      continue;  // degenerate segment (all same x)
    }
    double total = 0.0;
    for (std::size_t i = 0; i < split; ++i) {
      const double r = ly[i] - lf(lx[i]);
      total += r * r;
    }
    for (std::size_t i = 0; i < rx.size(); ++i) {
      const double r = ry[i] - rf(rx[i]);
      total += r * r;
    }
    if (total < best.sse) {
      best.left = lf;
      best.right = rf;
      best.knot = xs[split - 1];
      best.sse = total;
    }
  }
  if (!std::isfinite(best.sse)) {
    throw std::invalid_argument("fit_segmented: no valid split found");
  }
  return best;
}

}  // namespace ipso::stats
