#pragma once

#include "stats/series.h"

#include <span>

/// \file regression.h
/// Linear, power-law and segmented regression — the workhorses of Section V's
/// scaling-factor estimation (Figs. 5 and 6 of the paper fit IN(n) with
/// straight lines and a changepoint; ε(n) and q(n) are fitted as power laws
/// α·n^δ and β·n^γ via log-log OLS).

namespace ipso::stats {

/// Result of an ordinary least-squares straight-line fit y = slope·x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination in the fit range
  double slope_stderr = 0.0;      ///< standard error of the slope (0 if n<3)
  double intercept_stderr = 0.0;  ///< standard error of the intercept

  /// Evaluates the fitted line.
  double operator()(double x) const noexcept { return slope * x + intercept; }
};

/// OLS straight-line fit. Requires at least two points with distinct x.
LinearFit fit_linear(const Series& s);

/// OLS on raw spans (sizes must match, >= 2 distinct x).
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Result of a power-law fit y = coeff · x^exponent (x, y > 0 required).
struct PowerFit {
  double coeff = 1.0;
  double exponent = 0.0;
  double r_squared = 0.0;
  /// Standard error of the exponent (from the log-log OLS). Decides
  /// borderline classifications: a fitted gamma of 1.04 +- 0.10 is
  /// consistent with the IIIt,2 boundary, 1.04 +- 0.01 is not.
  double exponent_stderr = 0.0;

  /// Evaluates the fitted power law.
  double operator()(double x) const noexcept;
};

/// Log-log OLS power-law fit y = c·x^e. Points with x <= 0 or y <= 0 are
/// skipped (q(1) = 0 is legitimate data but cannot enter a log fit).
PowerFit fit_power(const Series& s);

/// Result of a two-segment piecewise-linear fit with a changepoint at x = knot.
/// Models Fig. 5 of the paper: TeraSort's IN(n) has slope ~0.15 before the
/// reducer-memory overflow and ~0.25 after it, with a jump at the knot.
struct SegmentedFit {
  LinearFit left;    ///< fit over x <= knot
  LinearFit right;   ///< fit over x > knot
  double knot = 0.0; ///< changepoint location
  double sse = 0.0;  ///< total sum of squared errors of the two segments

  /// Evaluates the piecewise line.
  double operator()(double x) const noexcept {
    return x <= knot ? left(x) : right(x);
  }

  /// True when the two segments differ enough (slope ratio or level jump)
  /// to call the series "step-wise" in the paper's sense.
  bool has_breakpoint(double min_slope_ratio = 1.2) const noexcept;
};

/// Exhaustive changepoint search: tries every interior split with at least
/// `min_seg` points per side and returns the split minimizing total SSE.
/// Requires at least 2·min_seg points.
SegmentedFit fit_segmented(const Series& s, std::size_t min_seg = 3);

/// Residual sum of squares of a fitted callable against a series.
template <typename F>
double sse(const Series& s, F&& f) noexcept {
  double acc = 0.0;
  for (const auto& p : s) {
    const double r = p.y - f(p.x);
    acc += r * r;
  }
  return acc;
}

/// R² of a fitted callable against a series (1 - SSE/SST); returns 1 when the
/// series has zero variance.
template <typename F>
double r_squared(const Series& s, F&& f) noexcept {
  if (s.empty()) return 1.0;
  double m = 0.0;
  for (const auto& p : s) m += p.y;
  m /= static_cast<double>(s.size());
  double sst = 0.0;
  for (const auto& p : s) sst += (p.y - m) * (p.y - m);
  if (sst == 0.0) return 1.0;
  return 1.0 - sse(s, f) / sst;
}

}  // namespace ipso::stats
