#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

/// \file series.h
/// A Series is the universal currency of this repository: a set of (x, y)
/// points such as (scale-out degree n, speedup S(n)) or (n, IN(n)). All the
/// fitters in regression.h / nonlinear.h consume Series, and all the bench
/// printers emit them.

namespace ipso::stats {

/// One (x, y) observation.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Ordered collection of (x, y) points with a name, e.g. "TeraSort IN(n)".
class Series {
 public:
  Series() = default;

  /// Creates an empty named series.
  explicit Series(std::string name) : name_(std::move(name)) {}

  /// Creates a named series from parallel x/y ranges (sizes must match).
  Series(std::string name, std::span<const double> xs,
         std::span<const double> ys);

  /// Appends one point.
  void add(double x, double y) { points_.push_back({x, y}); }

  /// Number of points.
  std::size_t size() const noexcept { return points_.size(); }

  /// True when the series has no points.
  bool empty() const noexcept { return points_.empty(); }

  /// Point access.
  const Point& operator[](std::size_t i) const { return points_[i]; }

  /// All points.
  const std::vector<Point>& points() const noexcept { return points_; }

  /// Series name (used by report printers).
  const std::string& name() const noexcept { return name_; }

  /// Renames the series.
  void set_name(std::string name) { name_ = std::move(name); }

  /// All x values, in order.
  std::vector<double> xs() const;

  /// All y values, in order.
  std::vector<double> ys() const;

  /// Restricts to points with lo <= x <= hi (used to fit on small n only).
  Series slice_x(double lo, double hi) const;

  /// Applies y -> f(y) pointwise and returns the transformed series.
  template <typename F>
  Series map_y(F&& f) const {
    Series out(name_);
    out.points_.reserve(points_.size());
    for (const auto& p : points_) out.add(p.x, f(p.y));
    return out;
  }

  /// Linear interpolation of y at the given x; clamps outside the x-range.
  /// Requires points sorted by x (the experiment sweeps always are).
  double interpolate(double x) const;

  /// The x value whose y is largest; 0 for an empty series.
  double argmax_x() const noexcept;

  /// The largest y value; 0 for an empty series.
  double max_y() const noexcept;

  /// Iterators so range-for works.
  auto begin() const noexcept { return points_.begin(); }
  auto end() const noexcept { return points_.end(); }

 private:
  std::string name_;
  std::vector<Point> points_;
};

/// True when ys are non-decreasing along the series (tolerance for noise).
bool is_monotone_nondecreasing(const Series& s, double tol = 1e-9) noexcept;

/// True when the series rises to an interior maximum and then falls by more
/// than `drop_frac` of the peak — the signature of type-IV (peaked) scaling.
bool is_peaked(const Series& s, double drop_frac = 0.05) noexcept;

}  // namespace ipso::stats
