#pragma once

#include "stats/series.h"

#include <array>
#include <span>

/// \file surface.h
/// Bivariate quadratic surface fitting. The paper plots Figs. 9-10 as "the
/// projected curves of the matched two-dimensional surfaces as functions of
/// N and m based on nonlinear regression" — this is that surface: a full
/// quadratic z ~ c0 + c1 x + c2 y + c3 x^2 + c4 x y + c5 y^2 fitted by
/// least squares, with slice helpers producing the projections.

namespace ipso::stats {

/// One (x, y, z) observation, e.g. (N, m, speedup).
struct SurfacePoint {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// Fitted quadratic surface.
class QuadraticSurface {
 public:
  /// Least-squares fit over the samples (needs >= 6 in general position;
  /// throws std::invalid_argument otherwise).
  static QuadraticSurface fit(std::span<const SurfacePoint> samples);

  /// Evaluates the surface.
  double operator()(double x, double y) const noexcept;

  /// Coefficients (c0..c5) of 1, x, y, x^2, xy, y^2.
  const std::array<double, 6>& coeffs() const noexcept { return c_; }

  /// Coefficient of determination on the fitting samples.
  double r_squared() const noexcept { return r2_; }

  /// Projection y -> f(g(y), y): slice along a curve x = g(y). Used for
  /// the fixed-time dimension (x = N = k·m with y = m).
  template <typename G>
  Series slice(std::span<const double> ys, G&& g,
               std::string name = "slice") const {
    Series out(std::move(name));
    for (double y : ys) out.add(y, (*this)(g(y), y));
    return out;
  }

  /// Slice at constant x (the fixed-size dimension: N fixed, sweep m).
  Series slice_fixed_x(double x, std::span<const double> ys,
                       std::string name = "fixed-x slice") const;

 private:
  std::array<double, 6> c_{};
  double r2_ = 0.0;
};

}  // namespace ipso::stats
