#include "stats/series.h"

#include <algorithm>
#include <stdexcept>

namespace ipso::stats {

Series::Series(std::string name, std::span<const double> xs,
               std::span<const double> ys)
    : name_(std::move(name)) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("Series: xs and ys must have equal length");
  }
  points_.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) points_.push_back({xs[i], ys[i]});
}

std::vector<double> Series::xs() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.x);
  return out;
}

std::vector<double> Series::ys() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.y);
  return out;
}

Series Series::slice_x(double lo, double hi) const {
  Series out(name_);
  for (const auto& p : points_) {
    if (p.x >= lo && p.x <= hi) out.add(p.x, p.y);
  }
  return out;
}

double Series::interpolate(double x) const {
  if (points_.empty()) return 0.0;
  if (x <= points_.front().x) return points_.front().y;
  if (x >= points_.back().x) return points_.back().y;
  // Find the bracketing segment.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), x,
      [](const Point& p, double v) { return p.x < v; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  if (hi.x == lo.x) return lo.y;
  const double t = (x - lo.x) / (hi.x - lo.x);
  return lo.y * (1.0 - t) + hi.y * t;
}

double Series::argmax_x() const noexcept {
  if (points_.empty()) return 0.0;
  const auto it = std::max_element(
      points_.begin(), points_.end(),
      [](const Point& a, const Point& b) { return a.y < b.y; });
  return it->x;
}

double Series::max_y() const noexcept {
  if (points_.empty()) return 0.0;
  const auto it = std::max_element(
      points_.begin(), points_.end(),
      [](const Point& a, const Point& b) { return a.y < b.y; });
  return it->y;
}

bool is_monotone_nondecreasing(const Series& s, double tol) noexcept {
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i].y < s[i - 1].y - tol) return false;
  }
  return true;
}

bool is_peaked(const Series& s, double drop_frac) noexcept {
  if (s.size() < 3) return false;
  const double peak = s.max_y();
  if (peak <= 0.0) return false;
  // The peak must be interior and the tail must drop below the threshold.
  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i].y == peak) {
      peak_idx = i;
      break;
    }
  }
  if (peak_idx + 1 >= s.size()) return false;  // still rising at the end
  double tail_min = peak;
  for (std::size_t i = peak_idx + 1; i < s.size(); ++i) {
    tail_min = std::min(tail_min, s[i].y);
  }
  return tail_min < peak * (1.0 - drop_frac);
}

}  // namespace ipso::stats
