#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace ipso::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double min(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) noexcept {
  // Kahan summation: experiment sweeps can sum thousands of per-task times.
  double s = 0.0, c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double coeff_variation(std::span<const double> xs) noexcept {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace ipso::stats
