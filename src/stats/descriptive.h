#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// \file descriptive.h
/// Descriptive statistics over contiguous samples. All functions take
/// std::span<const double> so callers can pass vectors, arrays or subranges
/// without copies.

namespace ipso::stats {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double variance(std::span<const double> xs) noexcept;

/// Sample standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Minimum; 0 for an empty span.
double min(std::span<const double> xs) noexcept;

/// Maximum; 0 for an empty span.
double max(std::span<const double> xs) noexcept;

/// Sum of all elements.
double sum(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// Coefficient of variation (stddev / mean); 0 if mean is 0.
double coeff_variation(std::span<const double> xs) noexcept;

/// Running (streaming) mean/variance accumulator — Welford's algorithm.
/// Used by the simulator's metrics collection so repeated runs don't have to
/// keep every sample.
class Accumulator {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations so far.
  std::size_t count() const noexcept { return n_; }

  /// Mean of observations (0 when empty).
  double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 with fewer than 2 observations).
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Smallest observation (0 when empty).
  double min() const noexcept { return n_ ? min_ : 0.0; }

  /// Largest observation (0 when empty).
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel Welford / Chan's method).
  void merge(const Accumulator& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ipso::stats
