#include "stats/random.h"

#include <cmath>

namespace ipso::stats {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

double capped_pareto_mean(double shape, double cap) {
  if (shape == 1.0) return 1.0 + std::log(cap);
  return shape / (shape - 1.0) * (1.0 - std::pow(cap, 1.0 - shape)) +
         std::pow(cap, 1.0 - shape);
}

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits into the mantissa; uniform on [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::heavy_tail(double min, double shape, double cap) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  const double v = min * std::pow(u, -1.0 / shape);
  return v < cap ? v : cap;
}

}  // namespace ipso::stats
