#pragma once

#include <array>
#include <cstdint>

/// \file random.h
/// Deterministic, seedable pseudo-random number generation for reproducible
/// experiments. Provides SplitMix64 (for seeding) and xoshiro256** (the main
/// generator), plus the distribution helpers the simulator and the workload
/// generators need. The standard-library distributions are deliberately
/// avoided because their output is implementation-defined; every result in
/// this repository must be bit-reproducible across toolchains.

namespace ipso::stats {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into the
/// 256-bit state of xoshiro256**. Passes BigCrush when used standalone.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mean of the capped Pareto distribution the straggler machinery samples
/// from: Pareto(x_m = 1, shape a) truncated at `cap`, with the residual
/// probability mass cap^-a concentrated at the cap (exactly the law of
/// `Rng::heavy_tail(1.0, shape, cap)`):
///   E[Y] = a/(a-1) * (1 - cap^(1-a)) + cap^(1-a)        (a != 1)
///   E[Y] = 1 + ln(cap)                                  (a == 1)
/// Shared by core::CappedParetoTime and sim::StragglerModel so the two
/// truncated-mean formulas can never drift apart. Requires shape > 0,
/// cap >= 1.
double capped_pareto_mean(double shape, double cap);

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// All distribution helpers are methods so call sites stay terse.
class Rng {
 public:
  /// Seeds the full state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x1234abcd5678ef00ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Standard normal via Box-Muller (caches the spare variate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate) noexcept;

  /// Bounded Pareto-like heavy tail: min * U^(-1/shape); used for straggler
  /// injection. The result is clamped to `cap` to keep E[max] finite, matching
  /// the paper's observation that tails are finite in practice.
  double heavy_tail(double min, double shape, double cap) noexcept;

  /// Fisher-Yates shuffle of an index range [0, n) returned as a permutation.
  /// (Utility for sampling-based partitioners.)
  template <typename T>
  void shuffle(T* data, std::size_t n) noexcept {
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_below(i));
      T tmp = data[i - 1];
      data[i - 1] = data[j];
      data[j] = tmp;
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace ipso::stats
