#include "stats/surface.h"

#include "stats/linalg.h"

#include <stdexcept>

namespace ipso::stats {

QuadraticSurface QuadraticSurface::fit(std::span<const SurfacePoint> samples) {
  if (samples.size() < 6) {
    throw std::invalid_argument("QuadraticSurface::fit: need >= 6 samples");
  }
  Matrix design(samples.size(), 6);
  std::vector<double> z(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& p = samples[i];
    design.at(i, 0) = 1.0;
    design.at(i, 1) = p.x;
    design.at(i, 2) = p.y;
    design.at(i, 3) = p.x * p.x;
    design.at(i, 4) = p.x * p.y;
    design.at(i, 5) = p.y * p.y;
    z[i] = p.z;
  }
  const auto beta = least_squares(design, z);

  QuadraticSurface s;
  for (std::size_t i = 0; i < 6; ++i) s.c_[i] = beta[i];

  // R^2 on the fitting samples.
  double mean = 0.0;
  for (double v : z) mean += v;
  mean /= static_cast<double>(z.size());
  double sse = 0.0, sst = 0.0;
  for (const auto& p : samples) {
    const double r = p.z - s(p.x, p.y);
    sse += r * r;
    sst += (p.z - mean) * (p.z - mean);
  }
  s.r2_ = sst > 0.0 ? 1.0 - sse / sst : 1.0;
  return s;
}

double QuadraticSurface::operator()(double x, double y) const noexcept {
  return c_[0] + c_[1] * x + c_[2] * y + c_[3] * x * x + c_[4] * x * y +
         c_[5] * y * y;
}

Series QuadraticSurface::slice_fixed_x(double x, std::span<const double> ys,
                                       std::string name) const {
  Series out(std::move(name));
  for (double y : ys) out.add(y, (*this)(x, y));
  return out;
}

}  // namespace ipso::stats
