#include "mapreduce/engine.h"

#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/event_queue.h"
#include "stats/random.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace ipso::mr {

namespace {

/// Emits the job's phase breakdown as simulated-time spans on a fresh track,
/// each tagged with its IPSO attribution (Wp / Ws / Wo). Observation-only:
/// every value is read from the already-computed result, pre-quantization.
void trace_mr_phases(const MrJobResult& r, std::size_t workers,
                     std::size_t tasks, std::uint64_t seed, double barrier,
                     double shuffle_excess) {
  const std::uint32_t track = obs::make_sim_track(
      "mr n=" + std::to_string(workers) + " tasks=" + std::to_string(tasks) +
      " seed=" + std::to_string(seed));
  if (track == obs::Tracer::kInvalidTrack) return;
  obs::record_span(track, "mr job", "mr", 0.0, r.makespan,
                   "\"workers\":" + std::to_string(workers) +
                       ",\"rolled_back\":" + (r.rolled_back ? "true" : "false"));
  obs::record_span(track, "init+dispatch", "mr", 0.0, r.phases.init,
                   "\"attr\":\"Wo\"");
  obs::record_span(track, "map", "mr", r.phases.init, barrier,
                   "\"attr\":\"Wp\",\"rollbacks\":" +
                       std::to_string(r.faults.rollbacks));
  double t = barrier;
  obs::record_span(track, "shuffle", "mr", t, t + r.phases.shuffle,
                   "\"attr\":\"Ws\",\"wo_excess_seconds\":" +
                       std::to_string(shuffle_excess));
  t += r.phases.shuffle;
  obs::record_span(track, "merge", "mr", t, t + r.phases.merge,
                   std::string("\"attr\":\"Ws\",\"spilled\":") +
                       (r.spilled ? "true" : "false"));
  t += r.phases.merge;
  obs::record_span(track, "reduce", "mr", t, t + r.phases.reduce,
                   "\"attr\":\"Ws\"");
}

}  // namespace

MrEngine::MrEngine(sim::ClusterConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
}

MrJobResult MrEngine::run_parallel(const MrWorkloadSpec& w,
                                   const MrJobConfig& job) {
  if (job.num_tasks == 0) {
    throw std::invalid_argument("run_parallel: need at least one task");
  }
  const std::size_t n = cfg_.workers;
  const std::size_t tasks = job.num_tasks;
  stats::Rng rng(job.seed);
  const sim::FaultModel fault(job.faults, job.seed);
  const bool fault_active = fault.active();

  sim::Simulation des;
  MrJobResult r;

  // --- (a) init + centralized dispatch: the master serially dispatches
  // every first-wave task; later waves dispatch when a worker frees up but
  // still pay the per-task cost at the master.
  const double init_end = cfg_.scheduler.init_seconds;
  const auto offsets = cfg_.scheduler.dispatch_offsets(tasks, n);

  // Worker occupancy: next free time per worker.
  std::vector<double> worker_free(n, init_end);
  std::vector<double> task_end(tasks, 0.0);
  double dispatch_total = 0.0;

  // Shared-resource contention stretches every concurrent task ([9]:
  // contention induces an effective serial workload). The stretch beyond
  // the uncontended duration is scale-out-induced, not parallel work.
  double contention = 1.0;
  if (cfg_.contention_phi > 0.0) {
    contention = sim::SharedResourceContention(cfg_.contention_phi,
                                               cfg_.contention_capacity)
                     .slowdown(n);
  }
  double contention_excess = 0.0;

  // Per-task compute draws, always taken from the shared stream in task
  // order so the no-fault execution is bit-identical with or without the
  // fault layer in the build.
  std::vector<double> base_time(tasks);
  std::vector<double> duration(tasks);
  for (std::size_t k = 0; k < tasks; ++k) {
    const double base =
        cfg_.worker_cpu.time_for(w.map_ops(job.shard_bytes)) *
        cfg_.straggler.factor(rng);
    const double compute = base * contention;
    contention_excess += compute - base;
    base_time[k] = base;
    duration[k] = compute;
  }

  // Fault injection + speculation over the whole map phase (the cohort):
  // retries stretch a task's wall time; backups shorten the tail; all the
  // extra compute lands in Wo via FaultStats::wasted_seconds.
  if (fault_active) {
    std::vector<sim::TaskFaultOutcome> outcomes(tasks);
    std::vector<std::uint64_t> ids(tasks);
    for (std::size_t k = 0; k < tasks; ++k) {
      ids[k] = k;
      outcomes[k] = fault.run_task(duration[k], /*stage=*/0, k,
                                   /*spilled=*/false);
    }
    fault.apply_speculation(
        outcomes, /*stage=*/0, ids, /*spilled=*/false, [&](std::size_t i) {
          stats::Rng brng = fault.attempt_rng(/*stage=*/0, ids[i], 1);
          return cfg_.worker_cpu.time_for(w.map_ops(job.shard_bytes)) *
                 cfg_.straggler.factor(brng) * contention;
        });
    for (std::size_t k = 0; k < tasks; ++k) {
      duration[k] = outcomes[k].duration;
      r.rolled_back = r.rolled_back || outcomes[k].exhausted;
    }
    sim::FaultModel::accumulate(outcomes, &r.faults);
  }

  for (std::size_t k = 0; k < tasks; ++k) {
    const double dispatched = init_end + offsets[k];
    dispatch_total = std::max(dispatch_total, offsets[k]);
    const std::size_t worker = k % n;
    const double compute = duration[k];
    const double start = std::max(dispatched, worker_free[worker]);
    // The DES event keeps ordering honest; the closure records completion.
    des.schedule_at(start + compute, [&, k, start, compute] {
      task_end[k] = start + compute;
      r.sum_task_time += base_time[k];  // Wp counts uncontended work
      r.max_task_time = std::max(r.max_task_time, compute);
    });
    worker_free[worker] = start + compute;
  }
  des.run();

  double barrier = *std::max_element(task_end.begin(), task_end.end());
  r.phases.init = init_end + dispatch_total;
  r.phases.map = barrier - r.phases.init;
  if (r.rolled_back) {
    // Retry-budget exhaustion rolls the map phase back once: every map task
    // re-executes (bounded recovery). The wall doubles, and the duplicated
    // compute — a full copy of the phase's work, Wp-sized — is pure
    // scale-out-induced work. This is what migrates a faulty workload
    // toward Type IV: q(n) gains a term ~ P[rollback](n) · n.
    ++r.faults.rollbacks;
    if (obs::enabled()) {
      static const obs::Counter c_rollbacks("sim.fault.rollbacks");
      c_rollbacks.add();
    }
    double phase_compute = 0.0;
    for (double d : duration) phase_compute += d;
    r.faults.wasted_seconds += phase_compute;
    barrier += r.phases.map;
    r.phases.map *= 2.0;
  }

  // --- (c)+(d1): single reducer pulls all mapper outputs. The baseline
  // ingest cost (reading the intermediate data into the merge) exists in the
  // sequential model too, so it belongs to Ws (the paper attributes shuffle
  // to the merging phase and measured Wo ~ 0 for the MR cases); only the
  // incast excess and per-flow latency are scale-out-induced.
  const double inter_per_task = w.intermediate_bytes(job.shard_bytes);
  r.intermediate_bytes = inter_per_task * static_cast<double>(tasks);
  const double ingest_bw =
      std::min(cfg_.network.bytes_per_second, cfg_.disk.bytes_per_second);
  const double ingest = r.intermediate_bytes / ingest_bw;
  const double shuffle_time = std::max(
      ingest, cfg_.network.transfer_time(r.intermediate_bytes, tasks));
  const double shuffle_excess = shuffle_time - ingest;
  r.phases.shuffle = shuffle_time;

  // --- (d2) merge, with optional spill when the reducer memory overflows.
  double merge = cfg_.merge_cpu.time_for(w.merge_ops(r.intermediate_bytes));
  if (w.spill_enabled &&
      cfg_.reducer_memory.overflows(r.intermediate_bytes)) {
    // Once the working set exceeds memory the merge turns into an external
    // merge: the *entire* intermediate is written out and read back, which
    // is why the paper sees IN(n) "burst by over 30%" at the overflow
    // point (Fig. 5), not just a slope change.
    r.spilled = true;
    r.spill_bytes = r.intermediate_bytes;
    r.phases.spill = cfg_.disk.time_for(2.0 * r.spill_bytes);
    merge += r.phases.spill;
  }
  r.phases.merge = merge;

  // --- (d3) final reduce.
  r.phases.reduce = cfg_.merge_cpu.time_for(w.reduce_ops(r.intermediate_bytes));

  r.makespan = barrier + shuffle_time + merge + r.phases.reduce;

  // --- IPSO attribution (paper Section V): map compute is Wp; the merge
  // phase including the baseline intermediate ingest (identical work in the
  // sequential model) is Ws; dispatch beyond one task plus the shuffle's
  // incast/latency excess are Wo — they exist only because of the scale-out.
  r.components.n = static_cast<double>(n);
  r.components.wp = r.sum_task_time;
  r.components.ws = ingest + merge + r.phases.reduce;
  const double one_task_dispatch = cfg_.scheduler.per_task_cost(n);
  r.components.wo = std::max(0.0, dispatch_total - one_task_dispatch) +
                    shuffle_excess + contention_excess +
                    r.faults.wasted_seconds;
  r.components.max_tp = r.max_task_time;

  if (obs::enabled()) {
    trace_mr_phases(r, n, tasks, job.seed, barrier, shuffle_excess);
  }

  if (job.measurement_precision > 0.0) {
    r.phases = r.phases.quantized(job.measurement_precision);
  }
  return r;
}

MrJobResult MrEngine::run_sequential(const MrWorkloadSpec& w,
                                     const MrJobConfig& job) {
  if (job.num_tasks == 0) {
    throw std::invalid_argument("run_sequential: need at least one task");
  }
  const std::size_t tasks = job.num_tasks;
  MrJobResult r;

  // One unit executes every task back-to-back: no dispatch cost growth, no
  // network shuffle (results stay local).
  const double one_task =
      cfg_.worker_cpu.time_for(w.map_ops(job.shard_bytes));
  r.sum_task_time = one_task * static_cast<double>(tasks);
  r.max_task_time = one_task;
  r.phases.init = cfg_.scheduler.init_seconds;
  r.phases.map = r.sum_task_time;

  const double inter_per_task = w.intermediate_bytes(job.shard_bytes);
  r.intermediate_bytes = inter_per_task * static_cast<double>(tasks);

  // Reading the task outputs into the merge costs the same here as the
  // shuffle's baseline ingest does in the parallel run (local I/O).
  const double ingest_bw =
      std::min(cfg_.network.bytes_per_second, cfg_.disk.bytes_per_second);
  const double ingest = r.intermediate_bytes / ingest_bw;
  r.phases.shuffle = ingest;

  double merge = cfg_.merge_cpu.time_for(w.merge_ops(r.intermediate_bytes));
  if (w.spill_enabled &&
      cfg_.reducer_memory.overflows(r.intermediate_bytes)) {
    // Once the working set exceeds memory the merge turns into an external
    // merge: the *entire* intermediate is written out and read back, which
    // is why the paper sees IN(n) "burst by over 30%" at the overflow
    // point (Fig. 5), not just a slope change.
    r.spilled = true;
    r.spill_bytes = r.intermediate_bytes;
    r.phases.spill = cfg_.disk.time_for(2.0 * r.spill_bytes);
    merge += r.phases.spill;
  }
  r.phases.merge = merge;
  r.phases.reduce = cfg_.merge_cpu.time_for(w.reduce_ops(r.intermediate_bytes));

  r.makespan =
      r.phases.init + r.phases.map + ingest + merge + r.phases.reduce;

  r.components.n = 1.0;
  r.components.wp = r.sum_task_time;
  r.components.ws = ingest + merge + r.phases.reduce;
  r.components.wo = 0.0;  // sequential execution induces no Wo (paper fn. 1)
  r.components.max_tp = r.sum_task_time;  // one unit does all parallel work

  if (job.measurement_precision > 0.0) {
    r.phases = r.phases.quantized(job.measurement_precision);
  }
  return r;
}

}  // namespace ipso::mr
