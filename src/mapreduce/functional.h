#pragma once

#include "mapreduce/engine.h"

#include <memory>
#include <string>

/// \file functional.h
/// The bridge between the *functional* kernels (which really compute) and
/// the *simulated* cost models (which really scale). A FunctionalMrJob runs
/// the actual map/reduce computation on (down-sampled) real data, measures
/// the intermediate-data ratio it actually produced, folds that measurement
/// into the workload spec, and only then simulates the timing — so the
/// scaling behaviour is grounded in measured properties of the real
/// computation rather than hand-picked constants (DESIGN.md §2).

namespace ipso::mr {

/// A real MapReduce computation, type-erased.
class FunctionalMrJob {
 public:
  virtual ~FunctionalMrJob() = default;

  /// Workload name (matches the paired spec's name).
  virtual std::string name() const = 0;

  /// Generates the input for `tasks` map tasks of `shard_bytes` each. The
  /// functional layer may down-sample (compute on min(shard_bytes, cap))
  /// as long as the measured ratios remain representative.
  virtual void prepare(std::uint64_t seed, std::size_t tasks,
                       std::size_t shard_bytes) = 0;

  /// Number of prepared tasks.
  virtual std::size_t tasks() const = 0;

  /// Actually executes map task `i`; returns the intermediate bytes the
  /// real computation produced for it.
  virtual double run_map(std::size_t i) = 0;

  /// Actual input bytes of task `i` (functional scale).
  virtual double input_bytes(std::size_t i) const = 0;

  /// Actually merges/reduces every map output; returns final output bytes.
  virtual double run_reduce() = 0;

  /// Checks the job's correctness invariant on the final result
  /// (sortedness, conservation of counts, checksum, estimate accuracy...).
  virtual bool verify() const = 0;
};

/// Result of a grounded run: the simulated timing, the functional
/// verification verdict, and the measured data ratios that were folded
/// into the spec.
struct FunctionalRunResult {
  MrJobResult simulated;       ///< timing from the calibrated simulation
  bool verified = false;       ///< functional invariant held
  double measured_ratio = 0.0; ///< per-task intermediate/input bytes (mean)
  double measured_fixed_intermediate = 0.0;  ///< mean per-task bytes when
                                             ///< the ratio is ~0 (combiner)
  MrWorkloadSpec grounded_spec;  ///< the spec actually simulated
};

/// Executes the functional job, folds its measured intermediate volumes
/// into `spec` (replacing intermediate_ratio / fixed_intermediate_bytes),
/// then runs the simulated parallel job with the grounded spec.
/// The functional computation runs on down-sampled shards of at most
/// `functional_cap` bytes; the simulation uses the job's logical sizes.
FunctionalRunResult run_functional(MrEngine& engine, FunctionalMrJob& job,
                                   MrWorkloadSpec spec,
                                   const MrJobConfig& config,
                                   std::size_t functional_cap = 1 << 16);

}  // namespace ipso::mr
