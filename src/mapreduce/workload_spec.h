#pragma once

#include <string>

/// \file workload_spec.h
/// Cost-model description of a MapReduce workload, consumed by the engine.
/// The constants are *calibrated from the functional kernels* in
/// src/workloads (each kernel measures its own ops-per-byte and
/// intermediate-data ratio on real data at small scale), so the simulated
/// scaling behaviour is grounded in the actual computation — see
/// DESIGN.md section 2 for the substitution argument.

namespace ipso::mr {

/// Per-byte / per-task cost model of one MapReduce application.
struct MrWorkloadSpec {
  std::string name;

  // --- split (map) phase
  double map_ops_per_byte = 1.0;  ///< CPU ops per input byte in a map task

  // --- intermediate data produced by one map task over `shard_bytes` input:
  ///   intermediate = shard_bytes * intermediate_ratio + fixed_intermediate_bytes
  /// Sort-like workloads have ratio ~1 (all data flows to the reducer,
  /// giving in-proportion IN(n)); WordCount-like workloads have ratio ~0 and
  /// a fixed histogram (combiner output), giving IN(n) ~ 1.
  double intermediate_ratio = 1.0;
  double fixed_intermediate_bytes = 0.0;

  // --- merge stage (reducer merging intermediate results)
  double merge_ops_per_byte = 1.0;  ///< CPU ops per intermediate byte
  double fixed_merge_ops = 0.0;     ///< constant merge-stage work

  // --- final reduce stage
  double reduce_ops_per_byte = 0.0;
  double fixed_reduce_ops = 0.0;

  /// When true, intermediate data beyond the reducer's memory spills to
  /// disk (write + read back), the mechanism behind TeraSort's step-wise
  /// IN(n) (paper Fig. 5).
  bool spill_enabled = true;

  /// Intermediate bytes produced by one map task over `shard_bytes` input.
  double intermediate_bytes(double shard_bytes) const noexcept {
    return shard_bytes * intermediate_ratio + fixed_intermediate_bytes;
  }

  /// CPU ops of one map task over `shard_bytes` input.
  double map_ops(double shard_bytes) const noexcept {
    return shard_bytes * map_ops_per_byte;
  }

  /// CPU ops of the merge stage over the total intermediate volume.
  double merge_ops(double total_intermediate) const noexcept {
    return fixed_merge_ops + total_intermediate * merge_ops_per_byte;
  }

  /// CPU ops of the final reduce stage.
  double reduce_ops(double total_intermediate) const noexcept {
    return fixed_reduce_ops + total_intermediate * reduce_ops_per_byte;
  }
};

}  // namespace ipso::mr
