#pragma once

#include "mapreduce/engine.h"

#include <vector>

/// \file multiround.h
/// Multi-round job execution. The paper (Section III): "This model can also
/// be applied to the case where there are multiple rounds of the split and
/// merge phases with the same number of processing units in each split
/// phase" — Wp, Ws, Wo are the sums over rounds. This module chains rounds
/// of (possibly different) MapReduce workloads at the same scale-out degree
/// and aggregates the IPSO attribution, making that claim executable.

namespace ipso::mr {

/// One round: a workload spec plus its per-round job shape.
struct Round {
  MrWorkloadSpec workload;
  double shard_bytes = 128e6;
};

/// Aggregate result of a multi-round job.
struct MultiRoundResult {
  double makespan = 0.0;             ///< sum of round makespans (barriered)
  WorkloadComponents components;     ///< summed Wp/Ws/Wo; max_tp summed too
  sim::FaultStats faults;            ///< fault counters summed over rounds
  std::vector<MrJobResult> rounds;   ///< per-round detail
};

/// Runs the rounds back-to-back on the engine's cluster (the barrier at
/// each merge serializes rounds). `parallel` selects the scale-out or the
/// sequential execution model for every round. `faults` applies the same
/// fault-injection parameters to every round (each round draws its own
/// deterministic failure schedule from its round seed).
MultiRoundResult run_multi_round(MrEngine& engine,
                                 const std::vector<Round>& rounds,
                                 bool parallel, std::uint64_t seed = 1,
                                 const sim::FaultModelParams& faults = {});

}  // namespace ipso::mr
