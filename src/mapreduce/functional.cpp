#include "mapreduce/functional.h"

#include <algorithm>
#include <stdexcept>

namespace ipso::mr {

FunctionalRunResult run_functional(MrEngine& engine, FunctionalMrJob& job,
                                   MrWorkloadSpec spec,
                                   const MrJobConfig& config,
                                   std::size_t functional_cap) {
  if (config.num_tasks == 0) {
    throw std::invalid_argument("run_functional: need at least one task");
  }
  // Functional pass on down-sampled shards.
  const auto functional_bytes = static_cast<std::size_t>(std::min(
      config.shard_bytes, static_cast<double>(functional_cap)));
  job.prepare(config.seed, config.num_tasks, functional_bytes);

  double input_total = 0.0, inter_total = 0.0;
  for (std::size_t i = 0; i < job.tasks(); ++i) {
    input_total += job.input_bytes(i);
    inter_total += job.run_map(i);
  }
  job.run_reduce();

  FunctionalRunResult out;
  out.verified = job.verify();
  const auto tasks = static_cast<double>(job.tasks());
  out.measured_ratio = input_total > 0.0 ? inter_total / input_total : 0.0;
  out.measured_fixed_intermediate = inter_total / tasks;

  // Ground the spec in the measured volumes. Ratio-style workloads (Sort:
  // every byte forwarded) keep a per-byte ratio; combiner-style workloads
  // (WordCount: constant histogram) keep a per-task constant. The spec's
  // own shape (which field is nonzero) says which interpretation applies.
  out.grounded_spec = std::move(spec);
  if (out.grounded_spec.intermediate_ratio > 0.0) {
    out.grounded_spec.intermediate_ratio = out.measured_ratio;
    out.grounded_spec.fixed_intermediate_bytes = 0.0;
  } else {
    out.grounded_spec.fixed_intermediate_bytes =
        out.measured_fixed_intermediate;
  }

  out.simulated = engine.run_parallel(out.grounded_spec, config);
  return out;
}

}  // namespace ipso::mr
