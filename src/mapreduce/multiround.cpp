#include "mapreduce/multiround.h"

#include <stdexcept>

namespace ipso::mr {

MultiRoundResult run_multi_round(MrEngine& engine,
                                 const std::vector<Round>& rounds,
                                 bool parallel, std::uint64_t seed,
                                 const sim::FaultModelParams& faults) {
  if (rounds.empty()) {
    throw std::invalid_argument("run_multi_round: no rounds");
  }
  MultiRoundResult out;
  out.components.n =
      parallel ? static_cast<double>(engine.config().workers) : 1.0;
  std::uint64_t round_seed = seed;
  for (const auto& round : rounds) {
    MrJobConfig job;
    job.num_tasks = engine.config().workers;
    job.shard_bytes = round.shard_bytes;
    job.faults = faults;
    job.seed = round_seed++;
    const MrJobResult r = parallel
                              ? engine.run_parallel(round.workload, job)
                              : engine.run_sequential(round.workload, job);
    out.makespan += r.makespan;
    out.components.wp += r.components.wp;
    out.components.ws += r.components.ws;
    out.components.wo += r.components.wo;
    // Rounds are serialized by the merge barrier, so the parallel-phase
    // response times add across rounds.
    out.components.max_tp += r.components.max_tp;
    out.faults.merge(r.faults);
    out.rounds.push_back(r);
  }
  return out;
}

}  // namespace ipso::mr
