#pragma once

#include "core/workload.h"
#include "mapreduce/workload_spec.h"
#include "sim/cluster.h"
#include "sim/fault.h"
#include "sim/metrics.h"

#include <cstdint>
#include <vector>

/// \file engine.h
/// MapReduce job execution on the simulated cluster, following the paper's
/// system model (Section III): one round of n parallel map tasks with
/// barrier synchronization, followed by a single-reducer merge ("all the
/// MapReduce jobs in these experiments are configured as involving a single
/// reducer with synchronization barrier"). Also implements the paper's
/// *sequential job execution model* (Section IV): the same n tasks run
/// back-to-back on one unit, then merge — the measurable Eq. 7 numerator.

namespace ipso::mr {

/// One MapReduce job instance.
struct MrJobConfig {
  std::size_t num_tasks = 1;   ///< map tasks (= scale-out degree n here)
  double shard_bytes = 128e6;  ///< input bytes per map task (128 MB blocks)
  std::uint64_t seed = 1;      ///< straggler + fault randomness seed
  /// Measurement quantization in seconds (paper testbed: 1.0); 0 = exact.
  double measurement_precision = 0.0;
  /// Fault injection and recovery (sim::FaultModel): per-attempt map-task
  /// failure probability with a retry budget, one map-phase re-execution
  /// (rollback) on budget exhaustion, and speculative execution of the
  /// slowest map tasks. Inactive by default.
  sim::FaultModelParams faults{};
};

/// Result of one simulated job execution.
struct MrJobResult {
  sim::PhaseBreakdown phases;   ///< per-phase durations (quantized if asked)
  double makespan = 0.0;        ///< end-to-end job time (exact)
  double max_task_time = 0.0;   ///< slowest map task (E[max Tp,i] sample)
  double sum_task_time = 0.0;   ///< total map compute (Wp sample)
  double intermediate_bytes = 0.0;  ///< total map->reduce volume
  double spill_bytes = 0.0;     ///< reducer memory overflow volume
  bool spilled = false;         ///< true when the merge stage spilled
  sim::FaultStats faults;       ///< fault/speculation counters (map phase)
  bool rolled_back = false;     ///< map phase re-executed after exhaustion
  /// IPSO workload components attributed per the paper's methodology:
  /// wp = map compute, ws = merge+reduce (+spill I/O), wo = dispatch and
  /// shuffle overheads absent from the sequential model.
  WorkloadComponents components;
};

/// Executes MapReduce jobs on a simulated cluster.
class MrEngine {
 public:
  /// The engine validates the configuration once at construction.
  explicit MrEngine(sim::ClusterConfig cfg);

  /// Runs the job scaled out across cfg.workers units (tasks beyond the
  /// worker count queue and run in waves).
  MrJobResult run_parallel(const MrWorkloadSpec& w, const MrJobConfig& job);

  /// Runs the paper's sequential execution model: all tasks back-to-back on
  /// one unit, then the merge. No dispatch, shuffle, or broadcast costs —
  /// by definition the sequential execution induces no Wo (paper fn. 1).
  MrJobResult run_sequential(const MrWorkloadSpec& w, const MrJobConfig& job);

  /// Cluster configuration in use.
  const sim::ClusterConfig& config() const noexcept { return cfg_; }

 private:
  sim::ClusterConfig cfg_;
};

}  // namespace ipso::mr
